#include "app/catalog.h"

#include <cassert>

#include "util/strings.h"

namespace bass::app {

namespace {

// Shorthand for catalog construction.
ComponentId add(AppGraph& g, const std::string& name, std::int64_t cpu_milli,
                std::int64_t memory_mb, sim::Duration service_time,
                int concurrency = 1) {
  Component c;
  c.name = name;
  c.cpu_milli = cpu_milli;
  c.memory_mb = memory_mb;
  c.service_time = service_time;
  c.concurrency = concurrency;
  return g.add_component(c);
}

void link(AppGraph& g, ComponentId from, ComponentId to, net::Bps bandwidth,
          std::int64_t request_bytes, std::int64_t response_bytes,
          double probability = 1.0) {
  Edge e;
  e.from = from;
  e.to = to;
  e.bandwidth = bandwidth;
  e.request_bytes = request_bytes;
  e.response_bytes = response_bytes;
  e.probability = probability;
  g.add_dependency(e);
}

}  // namespace

AppGraph fig6_example() {
  AppGraph g("fig6-example");
  // Components "1".."7", one core each (the figure assumes 4-core nodes).
  std::vector<ComponentId> c(8, kInvalidComponent);
  for (int i = 1; i <= 7; ++i) {
    c[static_cast<std::size_t>(i)] = add(g, std::to_string(i), 1000, 128, sim::millis(1));
  }
  // Weights (Mbps) chosen to produce the published orders:
  //   BFS (frontier sorted by edge weight):  1,3,2,4,5,7,6
  //   longest path (by weight):              1,2,4,5,7,3,6
  link(g, c[1], c[3], net::mbps(10), 4096, 4096);
  link(g, c[1], c[2], net::mbps(5), 4096, 4096);
  link(g, c[2], c[4], net::mbps(8), 4096, 4096);
  link(g, c[4], c[5], net::mbps(7), 4096, 4096);
  link(g, c[5], c[7], net::mbps(6), 4096, 4096);
  link(g, c[3], c[6], net::mbps(1), 4096, 4096);
  return g;
}

AppGraph camera_pipeline_app() {
  AppGraph g("camera-pipeline");
  // Per-frame flow profiled at the deployed 10 fps: the camera publishes
  // ~50 KB frames (4 Mbps), the sampler forwards them to the detector
  // (2.7 Mbps), the detector emits ~60 KB annotated frames (4.8 Mbps) and
  // tiny label strings. Demands follow §6.2.2/§6.3.1: the detector is CPU
  // bound at 8 cores, the sampler takes 4.
  const ComponentId camera = add(g, "camera-stream", 2000, 512, sim::millis(2), 4);
  const ComponentId sampler = add(g, "frame-sampler", 4000, 1024, sim::millis(120), 4);
  const ComponentId detector = add(g, "object-detector", 8000, 4096, sim::millis(180), 2);
  const ComponentId image = add(g, "image-listener", 1000, 256, sim::millis(1), 8);
  const ComponentId label = add(g, "label-listener", 1000, 128, sim::millis(1), 8);
  link(g, camera, sampler, net::mbps(4), 50000, 128);
  link(g, sampler, detector, net::kbps(2700), 50000, 128);
  link(g, detector, image, net::kbps(2000), 60000, 128);
  link(g, detector, label, net::kbps(35), 512, 128);
  return g;
}

AppGraph video_conference_app(
    const std::vector<std::pair<net::NodeId, int>>& clients_per_node,
    net::Bps per_stream_bps) {
  AppGraph g("video-conference");
  const ComponentId sfu = add(g, "pion-sfu", 2000, 1024, sim::micros(200), 16);

  int total_participants = 0;
  for (const auto& [node, count] : clients_per_node) total_participants += count;

  for (const auto& [node, count] : clients_per_node) {
    if (count <= 0) continue;
    Component clients;
    clients.name = util::str_format("clients@node%d", node);
    clients.cpu_milli = 0;  // not a real pod: an attachment point in the mesh
    clients.memory_mb = 0;
    clients.pinned_node = node;
    const ComponentId cg = g.add_component(clients);
    // One DAG edge per client group carrying the pair's total requirement:
    // downlink (the SFU forwards every *other* participant's stream to each
    // client here) plus uplink (each client publishes one stream). A single
    // direction keeps the component graph a DAG; the workload engine
    // accounts both directions of traffic against this edge.
    const net::Bps down =
        per_stream_bps * static_cast<net::Bps>(count) *
        static_cast<net::Bps>(std::max(total_participants - 1, 0));
    const net::Bps up = per_stream_bps * static_cast<net::Bps>(count);
    link(g, sfu, cg, down + up, 1200, 0);
  }
  return g;
}

AppGraph social_network_app(double profile_scale) {
  AppGraph g("social-network");
  // 27 components mirroring DeathStarBench's social network: an nginx
  // frontend, eleven logic services, and their cache/store pairs. Demands
  // total ~12.4 cores so the app fits the paper's 4x4-core d710 cluster
  // with room to spare. Edge bandwidths are the profiled requirement at
  // peak load (400 RPS); message sizes satisfy rate = 400 * (req+resp) * 8.
  const auto ms = [](std::int64_t m) { return sim::millis(m); };

  const ComponentId nginx = add(g, "nginx-web-server", 1000, 256, ms(1), 8);
  const ComponentId compose = add(g, "compose-post-service", 800, 256, ms(2), 4);
  const ComponentId text = add(g, "text-service", 400, 128, ms(1), 4);
  const ComponentId uid = add(g, "unique-id-service", 200, 64, ms(1), 4);
  const ComponentId media = add(g, "media-service", 400, 128, ms(1), 4);
  const ComponentId mention = add(g, "user-mention-service", 300, 128, ms(1), 4);
  const ComponentId url = add(g, "url-shorten-service", 300, 128, ms(1), 4);
  const ComponentId user = add(g, "user-service", 400, 128, ms(1), 4);
  const ComponentId social = add(g, "social-graph-service", 500, 256, ms(1), 4);
  const ComponentId home = add(g, "home-timeline-service", 800, 256, ms(1), 4);
  const ComponentId utl = add(g, "user-timeline-service", 600, 256, ms(1), 4);
  const ComponentId post = add(g, "post-storage-service", 800, 256, ms(1), 4);
  const ComponentId wht = add(g, "write-home-timeline", 400, 128, ms(1), 4);
  const ComponentId media_fe = add(g, "media-frontend", 400, 128, ms(1), 4);

  const ComponentId post_mc = add(g, "post-storage-memcached", 400, 512, ms(0), 8);
  const ComponentId post_db = add(g, "post-storage-mongodb", 600, 512, ms(3), 4);
  const ComponentId utl_rd = add(g, "user-timeline-redis", 400, 384, ms(0), 8);
  const ComponentId utl_db = add(g, "user-timeline-mongodb", 500, 512, ms(3), 4);
  const ComponentId home_rd = add(g, "home-timeline-redis", 400, 384, ms(0), 8);
  const ComponentId social_rd = add(g, "social-graph-redis", 400, 384, ms(0), 8);
  const ComponentId social_db = add(g, "social-graph-mongodb", 500, 512, ms(3), 4);
  const ComponentId url_mc = add(g, "url-shorten-memcached", 300, 256, ms(0), 8);
  const ComponentId url_db = add(g, "url-shorten-mongodb", 400, 512, ms(3), 4);
  const ComponentId user_mc = add(g, "user-memcached", 300, 256, ms(0), 8);
  const ComponentId user_db = add(g, "user-mongodb", 400, 512, ms(3), 4);
  const ComponentId media_mc = add(g, "media-memcached", 300, 256, ms(0), 8);
  const ComponentId media_db = add(g, "media-mongodb", 400, 512, ms(3), 4);

  assert(g.component_count() == 27);

  // Message sizes are calibrated so that the *offered* traffic at the
  // profiling load (400 RPS) matches each edge's bandwidth weight:
  //   rate = 400 RPS x P(edge invoked per request) x (req+resp bytes) x 8,
  // where P multiplies the probabilities down the call tree. That keeps the
  // "profiled requirement" and the workload's behaviour mutually honest.

  // --- Read path (home/user timeline), the dominant traffic ---
  link(g, nginx, home, net::mbps(40), 512, 20300, 0.60);
  link(g, home, home_rd, net::mbps(18), 256, 9100, 1.0);
  link(g, home, post, net::mbps(35), 512, 17700, 1.0);
  link(g, home, social, net::mbps(12), 256, 12200, 0.5);
  link(g, social, social_rd, net::mbps(8), 256, 6650, 0.9);
  link(g, social, social_db, net::mbps(3), 256, 23100, 0.1);
  link(g, social, user, net::mbps(4), 256, 10100, 0.3);

  link(g, nginx, utl, net::mbps(25), 512, 25500, 0.30);
  link(g, utl, utl_rd, net::mbps(10), 256, 10100, 1.0);
  link(g, utl, utl_db, net::mbps(4), 256, 16400, 0.25);
  link(g, utl, post, net::mbps(20), 512, 22600, 0.9);

  link(g, post, post_mc, net::mbps(30), 256, 11100, 0.85);
  link(g, post, post_db, net::mbps(12), 256, 12650, 0.3);

  // --- Write path (compose post) ---
  link(g, nginx, compose, net::mbps(15), 45000, 1800, 0.10);
  link(g, compose, text, net::mbps(6), 17000, 1750, 1.0);
  link(g, text, url, net::mbps(2), 5000, 5400, 0.6);
  link(g, text, mention, net::mbps(2), 5000, 5400, 0.6);
  link(g, url, url_mc, net::mbps(1), 300, 6200, 0.8);
  link(g, url, url_db, net::mbps(1), 300, 10100, 0.5);
  link(g, mention, user_mc, net::mbps(1), 300, 6200, 0.8);
  link(g, compose, uid, net::mbps(1), 200, 2925, 1.0);
  link(g, compose, media, net::mbps(4), 30000, 1250, 0.4);
  link(g, media, media_mc, net::mbps(2), 500, 21800, 0.7);
  link(g, media, media_db, net::mbps(2), 500, 38500, 0.4);
  link(g, media_fe, media, net::mbps(3), 17500, 1250, 1.0);
  link(g, nginx, media_fe, net::mbps(3), 17500, 1250, 0.05);
  link(g, compose, user, net::mbps(2), 400, 5850, 1.0);
  link(g, user, user_mc, net::mbps(2), 300, 3250, 0.8);
  link(g, user, user_db, net::mbps(1), 300, 6800, 0.2);
  link(g, compose, post, net::mbps(8), 24000, 1000, 1.0);
  link(g, compose, utl, net::mbps(5), 15000, 625, 1.0);
  link(g, compose, wht, net::mbps(6), 18000, 750, 1.0);
  link(g, wht, home_rd, net::mbps(5), 15000, 625, 1.0);
  link(g, wht, social, net::mbps(3), 600, 8775, 1.0);

  if (profile_scale != 1.0) {
    // Re-profiled at a lighter/heavier workload: bandwidth requirements
    // scale with offered load; compute/memory demands do not.
    AppGraph scaled(g.name());
    for (ComponentId c = 0; c < g.component_count(); ++c) {
      scaled.add_component(g.component(c));
    }
    for (Edge e : g.edges()) {
      e.bandwidth =
          static_cast<net::Bps>(static_cast<double>(e.bandwidth) * profile_scale);
      scaled.add_dependency(e);
    }
    return scaled;
  }
  return g;
}

}  // namespace bass::app
