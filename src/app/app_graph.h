// The application model: components (pods) with CPU/memory demands, wired
// into a DAG whose edge weights are the maximum bandwidth requirement
// between the two components (gathered by offline profiling in the paper,
// §5). Edges also carry the per-RPC message sizes and invocation
// probabilities the workload engine uses to generate traffic consistent
// with those bandwidth requirements.
//
// Edge direction follows data flow: u -> v means u invokes/feeds v, and
// Algorithm 1's "dependencies of u" are u's out-neighbors.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/types.h"
#include "sim/time.h"

namespace bass::app {

using ComponentId = std::int32_t;
constexpr ComponentId kInvalidComponent = -1;

struct Component {
  std::string name;
  std::int64_t cpu_milli = 100;
  std::int64_t memory_mb = 64;

  // Workload parameters (unused by the scheduler itself):
  sim::Duration service_time = sim::millis(1);  // per-request compute time
  int concurrency = 1;                          // parallel requests served
  // Pinned components (e.g. the pseudo-components modelling conference
  // clients at fixed mesh nodes) are placed here and never migrated.
  std::optional<net::NodeId> pinned_node;

  // State carried across a migration (a CRIU-style checkpoint, §8). The
  // paper's evaluation assumes stateless components (0 = restart cold);
  // stateful ones ship this many MiB over the mesh before coming back up,
  // so migrating them costs transfer time *and* bandwidth.
  std::int64_t state_mb = 0;
};

struct Edge {
  ComponentId from = kInvalidComponent;
  ComponentId to = kInvalidComponent;
  net::Bps bandwidth = 0;  // the profiled requirement (the heuristics' weight)

  // Maximum one-way network latency the pair tolerates; 0 = unconstrained.
  // §3.2 lists latency among the placement constraints: the packer rejects
  // placements whose routed path exceeds this.
  sim::Duration max_latency = 0;

  // Workload parameters:
  std::int64_t request_bytes = 1024;
  std::int64_t response_bytes = 1024;
  double probability = 1.0;  // chance this edge is invoked per request
};

class AppGraph {
 public:
  explicit AppGraph(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  ComponentId add_component(Component c);
  // Adds a directed dependency edge; asserts both endpoints exist.
  void add_dependency(Edge e);

  int component_count() const { return static_cast<int>(components_.size()); }
  const Component& component(ComponentId id) const { return components_.at(id); }
  Component& component(ComponentId id) { return components_.at(id); }
  const std::vector<Edge>& edges() const { return edges_; }

  ComponentId find(const std::string& name) const;  // kInvalidComponent if absent

  // Updates the profiled bandwidth requirement of the (from, to) edge (the
  // online-profiling extension rewrites requirements at runtime). Returns
  // false when no such edge exists.
  bool set_edge_bandwidth(ComponentId from, ComponentId to, net::Bps bandwidth);

  // Outgoing edges of a component (its dependencies), in insertion order.
  std::vector<Edge> out_edges(ComponentId id) const;
  std::vector<Edge> in_edges(ComponentId id) const;
  int in_degree(ComponentId id) const;

  // Kahn topological order, ties broken by lowest component id. Empty if
  // the graph has a cycle.
  std::vector<ComponentId> topo_order() const;

  // True when the graph is a DAG with at least one component.
  bool validate(std::string* error = nullptr) const;

  std::int64_t total_cpu_milli() const;
  std::int64_t total_memory_mb() const;
  // Sum of all edge bandwidth requirements.
  net::Bps total_bandwidth() const;

 private:
  std::string name_;
  std::vector<Component> components_;
  std::vector<Edge> edges_;
};

}  // namespace bass::app
