#include "app/app_graph.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace bass::app {

ComponentId AppGraph::add_component(Component c) {
  const ComponentId id = static_cast<ComponentId>(components_.size());
  components_.push_back(std::move(c));
  return id;
}

void AppGraph::add_dependency(Edge e) {
  assert(e.from >= 0 && e.from < component_count());
  assert(e.to >= 0 && e.to < component_count());
  assert(e.from != e.to);
  edges_.push_back(e);
}

ComponentId AppGraph::find(const std::string& name) const {
  for (ComponentId id = 0; id < component_count(); ++id) {
    if (components_[id].name == name) return id;
  }
  return kInvalidComponent;
}

bool AppGraph::set_edge_bandwidth(ComponentId from, ComponentId to, net::Bps bandwidth) {
  for (Edge& e : edges_) {
    if (e.from == from && e.to == to) {
      e.bandwidth = bandwidth;
      return true;
    }
  }
  return false;
}

std::vector<Edge> AppGraph::out_edges(ComponentId id) const {
  std::vector<Edge> out;
  for (const Edge& e : edges_) {
    if (e.from == id) out.push_back(e);
  }
  return out;
}

std::vector<Edge> AppGraph::in_edges(ComponentId id) const {
  std::vector<Edge> out;
  for (const Edge& e : edges_) {
    if (e.to == id) out.push_back(e);
  }
  return out;
}

int AppGraph::in_degree(ComponentId id) const {
  int n = 0;
  for (const Edge& e : edges_) {
    if (e.to == id) ++n;
  }
  return n;
}

std::vector<ComponentId> AppGraph::topo_order() const {
  const int n = component_count();
  std::vector<int> indeg(n, 0);
  for (const Edge& e : edges_) ++indeg[e.to];

  // Min-heap on component id for a deterministic order.
  std::priority_queue<ComponentId, std::vector<ComponentId>, std::greater<>> ready;
  for (ComponentId id = 0; id < n; ++id) {
    if (indeg[id] == 0) ready.push(id);
  }
  std::vector<ComponentId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const ComponentId u = ready.top();
    ready.pop();
    order.push_back(u);
    for (const Edge& e : edges_) {
      if (e.from == u && --indeg[e.to] == 0) ready.push(e.to);
    }
  }
  if (static_cast<int>(order.size()) != n) return {};  // cycle
  return order;
}

bool AppGraph::validate(std::string* error) const {
  if (component_count() == 0) {
    if (error) *error = "application has no components";
    return false;
  }
  if (topo_order().empty() && !edges_.empty()) {
    if (error) *error = "component graph has a cycle";
    return false;
  }
  if (component_count() > 0 && topo_order().empty() && edges_.empty()) {
    // Unreachable: a graph with no edges always topo-sorts.
  }
  for (const Edge& e : edges_) {
    if (e.bandwidth < 0) {
      if (error) *error = "negative edge bandwidth";
      return false;
    }
    if (e.probability < 0.0 || e.probability > 1.0) {
      if (error) *error = "edge probability outside [0,1]";
      return false;
    }
  }
  for (const Component& c : components_) {
    if (c.cpu_milli < 0 || c.memory_mb < 0) {
      if (error) *error = "negative component resource demand";
      return false;
    }
  }
  return true;
}

std::int64_t AppGraph::total_cpu_milli() const {
  std::int64_t total = 0;
  for (const Component& c : components_) total += c.cpu_milli;
  return total;
}

std::int64_t AppGraph::total_memory_mb() const {
  std::int64_t total = 0;
  for (const Component& c : components_) total += c.memory_mb;
  return total;
}

net::Bps AppGraph::total_bandwidth() const {
  net::Bps total = 0;
  for (const Edge& e : edges_) total += e.bandwidth;
  return total;
}

}  // namespace bass::app
