#include "app/dot.h"

#include <map>
#include <sstream>
#include <vector>

#include "util/strings.h"

namespace bass::app {

namespace {

std::string bandwidth_label(net::Bps bps) {
  if (bps >= net::mbps(1)) {
    return util::str_format("%.1fM", static_cast<double>(bps) / 1e6);
  }
  if (bps >= net::kbps(1)) {
    return util::str_format("%.0fK", static_cast<double>(bps) / 1e3);
  }
  return util::str_format("%lld", static_cast<long long>(bps));
}

}  // namespace

std::string to_dot(const AppGraph& app,
                   const std::unordered_map<ComponentId, net::NodeId>* placement) {
  std::ostringstream out;
  out << "digraph \"" << app.name() << "\" {\n";
  out << "  rankdir=LR;\n  node [shape=box, style=rounded];\n";

  if (placement == nullptr) {
    for (ComponentId c = 0; c < app.component_count(); ++c) {
      out << "  c" << c << " [label=\"" << app.component(c).name << "\"];\n";
    }
  } else {
    // Cluster components by their node.
    std::map<net::NodeId, std::vector<ComponentId>> by_node;
    for (ComponentId c = 0; c < app.component_count(); ++c) {
      const auto it = placement->find(c);
      by_node[it == placement->end() ? net::kInvalidNode : it->second].push_back(c);
    }
    for (const auto& [node, comps] : by_node) {
      out << "  subgraph cluster_node" << (node < 0 ? 999 : node) << " {\n";
      out << "    label=\"node" << node << "\";\n    style=dashed;\n";
      for (ComponentId c : comps) {
        out << "    c" << c << " [label=\"" << app.component(c).name << "\"];\n";
      }
      out << "  }\n";
    }
  }

  for (const Edge& e : app.edges()) {
    out << "  c" << e.from << " -> c" << e.to << " [label=\""
        << bandwidth_label(e.bandwidth) << "\"";
    if (placement != nullptr) {
      const auto fa = placement->find(e.from);
      const auto fb = placement->find(e.to);
      const bool crossing = fa != placement->end() && fb != placement->end() &&
                            fa->second != fb->second;
      if (crossing) out << ", color=red, penwidth=2";
    }
    out << "];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace bass::app
