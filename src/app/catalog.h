// Builders for the applications the paper evaluates (§6.1), plus the Fig. 6
// illustration DAG. CPU/memory demands, edge bandwidth requirements, and
// per-RPC message sizes are chosen so that the workload's offered traffic is
// consistent with the profiled bandwidth (rate ≈ RPS × (req+resp bytes) × 8)
// and so the placement outcomes in the paper's figures reproduce.
#pragma once

#include <utility>
#include <vector>

#include "app/app_graph.h"
#include "net/types.h"

namespace bass::app {

// The 7-component example of Fig. 6. Component names are "1".."7"; expected
// orders are BFS: 1,3,2,4,5,7,6 and longest-path: 1,2,4,5,7,3,6.
AppGraph fig6_example();

// Camera-processing pipeline (Fig. 9): camera-stream -> frame-sampler ->
// object-detector -> {image-listener, label-listener}. The detector is CPU
// bound (8 cores), the sampler takes 4 (§6.3.1).
AppGraph camera_pipeline_app();

// Video conferencing (Pion SFU). The SFU is the only schedulable component.
// Each (node, participant-count) entry adds a *pinned* pseudo-component
// modelling the clients attached at that mesh node, with edges carrying the
// SFU's expected forwarding load so the bandwidth controller can reason
// about the SFU's links exactly as it does for any other component pair.
AppGraph video_conference_app(
    const std::vector<std::pair<net::NodeId, int>>& clients_per_node,
    net::Bps per_stream_bps);

// DeathStarBench-style social network: 27 microservices (frontend, logic
// services, caches, stores). Edge probabilities encode the request mix
// (reads dominate, caches absorb most store lookups).
//
// `profile_scale` scales the profiled bandwidth requirements (edge
// weights) without touching message sizes: the paper gathers requirements
// by offline profiling of the deployment's own workload (§5), so a mesh
// deployment load-tested at 50 RPS carries 50/400 of the microbenchmark
// profile. Message sizes are calibrated at 400 RPS (scale 1.0).
AppGraph social_network_app(double profile_scale = 1.0);

}  // namespace bass::app
