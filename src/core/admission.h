// Admission/placement queue for the long-running control plane (bassd,
// DESIGN.md §10). One-shot experiments call Orchestrator::deploy directly
// and treat failure as fatal; a serving loop cannot — arrivals outpace
// capacity all the time in a community mesh, and what happens next is
// policy:
//
//   * fifo    — strict arrival order with head-of-line blocking: the head
//               request retries every `retry_interval` until it fits;
//               nothing is ever rejected (and nothing overtakes).
//   * reject  — admit-or-reject at arrival; the queue depth stays zero and
//               callers learn their fate immediately (paper-style "the mesh
//               is full" behavior).
//   * defer   — failed requests go to the back of the queue and retry up to
//               `max_retries` times before rejection; later arrivals that
//               fit may overtake a stuck one.
//
// Every resolution journals a typed AdmissionOutcome event and updates the
// admission gauges (queue depth, sim-time admission wait), so p50/p99
// admission latency is readable straight off the metrics registry. All
// timing is sim-clock: same seed ⇒ identical outcomes, byte-identical
// journals.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "core/orchestrator.h"
#include "util/expected.h"

namespace bass::core {

enum class AdmissionPolicy { kFifo, kRejectOnPressure, kDeferRetry };

const char* admission_policy_name(AdmissionPolicy policy);
// Accepts "fifo", "reject", "defer"; error otherwise.
util::Expected<AdmissionPolicy> parse_admission_policy(const std::string& name);

struct AdmissionConfig {
  AdmissionPolicy policy = AdmissionPolicy::kFifo;
  sim::Duration retry_interval = sim::seconds(30);
  int max_retries = 5;  // defer policy only
};

struct AdmissionStats {
  std::int64_t submitted = 0;
  std::int64_t admitted = 0;
  std::int64_t rejected = 0;
  std::int64_t deferred = 0;   // defer bounces (one request can defer many times)
  std::int64_t cancelled = 0;  // departed while still queued
  int peak_depth = 0;
};

class AdmissionQueue {
 public:
  // `on_decision(instance, deployment, admitted)` fires exactly once per
  // submitted request that is admitted or rejected (never for defers, and
  // never for cancelled requests).
  using DecisionFn =
      std::function<void(int instance, DeploymentId deployment, bool admitted)>;

  AdmissionQueue(sim::Simulation& sim, Orchestrator& orchestrator,
                 AdmissionConfig config);
  ~AdmissionQueue();
  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  // Observability is optional and attached once, before traffic.
  void set_recorder(obs::Recorder* recorder);

  // Submits a deploy request. `instance` is the caller's identity for the
  // request (the churn driver's instance counter); `name` is passed to
  // Orchestrator::deploy for duplicate detection. Resolution may be
  // immediate (reject policy, or the app fits right now) or arbitrarily
  // later.
  void submit(int instance, std::string name, app::AppGraph app,
              SchedulerKind kind, DecisionFn on_decision);

  // Drops a still-queued request (the instance departed before it was ever
  // admitted). False if the instance is not waiting.
  bool cancel(int instance);

  // Re-attempts admission from the queue — call when capacity was released
  // (an undeploy) so waiting requests don't sit out a full retry interval.
  void kick();

  int depth() const { return static_cast<int>(queue_.size()); }
  const AdmissionStats& stats() const { return stats_; }

 private:
  struct Pending {
    int instance = -1;
    std::string name;
    app::AppGraph app{"pending"};
    SchedulerKind kind = SchedulerKind::kBassAuto;
    DecisionFn on_decision;
    sim::Time arrived = 0;
    int retries = 0;
  };

  // Tries to admit `p` right now; true on success (decision fired).
  bool try_admit(Pending& p);
  void resolve_reject(Pending& p);
  // Drains the queue head(s) per policy; arms the retry timer if blocked.
  void pump();
  void arm_retry();
  void journal(const char* action, int instance, DeploymentId deployment,
               sim::Duration wait);
  void update_depth_gauge();

  sim::Simulation* sim_;
  Orchestrator* orch_;
  AdmissionConfig config_;
  obs::Recorder* recorder_ = nullptr;
  obs::Gauge* m_depth_ = nullptr;
  obs::LogHistogram* m_wait_us_ = nullptr;
  obs::Counter* m_admitted_ = nullptr;
  obs::Counter* m_rejected_ = nullptr;
  obs::Counter* m_deferred_ = nullptr;
  std::deque<Pending> queue_;
  sim::EventId retry_timer_ = sim::kInvalidEvent;
  AdmissionStats stats_;
};

}  // namespace bass::core
