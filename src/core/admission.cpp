#include "core/admission.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace bass::core {

const char* admission_policy_name(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kFifo: return "fifo";
    case AdmissionPolicy::kRejectOnPressure: return "reject";
    case AdmissionPolicy::kDeferRetry: return "defer";
  }
  return "?";
}

util::Expected<AdmissionPolicy> parse_admission_policy(const std::string& name) {
  if (name == "fifo") return AdmissionPolicy::kFifo;
  if (name == "reject") return AdmissionPolicy::kRejectOnPressure;
  if (name == "defer") return AdmissionPolicy::kDeferRetry;
  return util::make_error("unknown admission policy '" + name +
                          "' (expected fifo | reject | defer)");
}

AdmissionQueue::AdmissionQueue(sim::Simulation& sim, Orchestrator& orchestrator,
                               AdmissionConfig config)
    : sim_(&sim), orch_(&orchestrator), config_(config) {}

AdmissionQueue::~AdmissionQueue() {
  if (retry_timer_ != sim::kInvalidEvent) sim_->cancel(retry_timer_);
}

void AdmissionQueue::set_recorder(obs::Recorder* recorder) {
  recorder_ = recorder;
  if (recorder == nullptr) {
    m_depth_ = nullptr;
    m_wait_us_ = nullptr;
    m_admitted_ = nullptr;
    m_rejected_ = nullptr;
    m_deferred_ = nullptr;
    return;
  }
  m_depth_ = &recorder->metrics().gauge("orchestrator.admission_queue_depth");
  // Admission wait is sim-clock (arrival -> resolution), not wall clock, so
  // the histogram is deterministic and journal-safe to export.
  m_wait_us_ = &recorder->metrics().log_timer_us("orchestrator.admission_wait_us");
  m_admitted_ = &recorder->metrics().counter("orchestrator.admissions_admitted");
  m_rejected_ = &recorder->metrics().counter("orchestrator.admissions_rejected");
  m_deferred_ = &recorder->metrics().counter("orchestrator.admissions_deferred");
}

void AdmissionQueue::journal(const char* action, int instance,
                             DeploymentId deployment, sim::Duration wait) {
  if (recorder_ == nullptr) return;
  obs::AdmissionOutcome outcome;
  outcome.at = sim_->now();
  outcome.instance = instance;
  outcome.deployment = deployment;
  outcome.action = action;
  outcome.queue_depth = depth();
  outcome.wait = wait;
  outcome.span = recorder_->new_span();
  outcome.parent = recorder_->current_span();
  recorder_->record(outcome);
}

void AdmissionQueue::update_depth_gauge() {
  if (m_depth_ != nullptr) m_depth_->set(static_cast<double>(depth()));
  stats_.peak_depth = std::max(stats_.peak_depth, depth());
}

bool AdmissionQueue::try_admit(Pending& p) {
  // deploy() copies the graph so a failed attempt leaves `p.app` intact for
  // the next retry.
  auto result = orch_->deploy(p.app, p.kind, p.name);
  if (!result.ok()) return false;
  const sim::Duration wait = sim_->now() - p.arrived;
  ++stats_.admitted;
  if (m_wait_us_ != nullptr) {
    m_wait_us_->observe(static_cast<double>(wait));
    m_admitted_->inc();
  }
  journal("admit", p.instance, result.value(), wait);
  if (p.on_decision) p.on_decision(p.instance, result.value(), true);
  return true;
}

void AdmissionQueue::resolve_reject(Pending& p) {
  const sim::Duration wait = sim_->now() - p.arrived;
  ++stats_.rejected;
  if (m_wait_us_ != nullptr) {
    m_wait_us_->observe(static_cast<double>(wait));
    m_rejected_->inc();
  }
  journal("reject", p.instance, kInvalidDeployment, wait);
  if (p.on_decision) p.on_decision(p.instance, kInvalidDeployment, false);
}

void AdmissionQueue::submit(int instance, std::string name, app::AppGraph app,
                            SchedulerKind kind, DecisionFn on_decision) {
  ++stats_.submitted;
  Pending p;
  p.instance = instance;
  p.name = std::move(name);
  p.app = std::move(app);
  p.kind = kind;
  p.on_decision = std::move(on_decision);
  p.arrived = sim_->now();

  if (config_.policy == AdmissionPolicy::kRejectOnPressure) {
    // Resolve at the door; the queue never holds anything.
    if (!try_admit(p)) resolve_reject(p);
    update_depth_gauge();
    return;
  }
  queue_.push_back(std::move(p));
  update_depth_gauge();
  pump();
}

bool AdmissionQueue::cancel(int instance) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->instance != instance) continue;
    const sim::Duration wait = sim_->now() - it->arrived;
    ++stats_.cancelled;
    journal("cancel", instance, kInvalidDeployment, wait);
    queue_.erase(it);
    update_depth_gauge();
    return true;
  }
  return false;
}

void AdmissionQueue::kick() { pump(); }

void AdmissionQueue::arm_retry() {
  if (retry_timer_ != sim::kInvalidEvent || queue_.empty()) return;
  retry_timer_ = sim_->schedule_after(config_.retry_interval, [this] {
    retry_timer_ = sim::kInvalidEvent;
    pump();
  });
}

void AdmissionQueue::pump() {
  // Admit as many heads as fit. On a miss: fifo holds the head (strict
  // ordering), defer sends it to the back — and only probes each waiting
  // request once per pump so a pump never loops forever.
  std::size_t probes = queue_.size();
  while (!queue_.empty() && probes-- > 0) {
    Pending& head = queue_.front();
    if (try_admit(head)) {
      queue_.pop_front();
      update_depth_gauge();
      continue;
    }
    if (config_.policy == AdmissionPolicy::kFifo) break;
    // Defer-and-retry: bounded bounces, then reject.
    ++head.retries;
    if (head.retries > config_.max_retries) {
      resolve_reject(head);
      queue_.pop_front();
      update_depth_gauge();
      continue;
    }
    ++stats_.deferred;
    if (m_deferred_ != nullptr) m_deferred_->inc();
    journal("defer", head.instance, kInvalidDeployment, sim_->now() - head.arrived);
    Pending bounced = std::move(head);
    queue_.pop_front();
    queue_.push_back(std::move(bounced));
  }
  arm_retry();
}

}  // namespace bass::core
