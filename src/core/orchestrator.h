// The BASS orchestrator: the "k3s server + BASS extensions" of Fig. 7.
// It owns deployments (app DAG + current placement + component up/down
// state), schedules with any of the three schedulers, and — when migration
// is enabled — runs the bandwidth-controller loop: read passive traffic
// stats and the net-monitor's capacity cache, apply Algorithm 3, pick a
// target node, and execute the move with a realistic restart outage.
#pragma once

#include <memory>
#include <vector>

#include "app/app_graph.h"
#include "cluster/cluster.h"
#include "controller/migration_policy.h"
#include "monitor/net_monitor.h"
#include "monitor/traffic_stats.h"
#include "net/network.h"
#include "obs/recorder.h"
#include "sched/bass_scheduler.h"
#include "sched/placement.h"
#include "sim/simulation.h"
#include "util/expected.h"

namespace bass::core {

enum class SchedulerKind { kBassBfs, kBassLongestPath, kBassAuto, kK3sDefault };

const char* scheduler_kind_name(SchedulerKind kind);

struct OrchestratorConfig {
  // Outage while a component is rescheduled and restarted — ~20 s for the
  // mesh experiments (§6.3.2), ~30 s in the microbenchmarks (§6.2.3).
  sim::Duration restart_duration = sim::seconds(20);
};

using DeploymentId = int;
constexpr DeploymentId kInvalidDeployment = -1;

// Workload engines implement this to follow their components around.
class DeploymentListener {
 public:
  virtual ~DeploymentListener() = default;
  virtual void on_component_down(app::ComponentId component) { (void)component; }
  virtual void on_component_up(app::ComponentId component, net::NodeId node) {
    (void)component;
    (void)node;
  }
};

struct MigrationEvent {
  sim::Time at;  // when the move completed (component back up)
  DeploymentId deployment;
  app::ComponentId component;
  net::NodeId from;
  net::NodeId to;
};

// One controller evaluation round (Table 1's rows).
struct ControllerRound {
  sim::Time at;
  int violating_components;  // exceeding their link utilization quota
  int migrations_started;
};

class Orchestrator {
 public:
  Orchestrator(sim::Simulation& sim, net::Network& network,
               cluster::ClusterState& cluster, OrchestratorConfig config = {});
  ~Orchestrator();
  Orchestrator(const Orchestrator&) = delete;
  Orchestrator& operator=(const Orchestrator&) = delete;

  // With a monitor attached, scheduling and the controller use its probe
  // cache (the real BASS deployment); without one they fall back to live
  // topology capacities (useful for oracle experiments and tests).
  void attach_monitor(monitor::NetMonitor* monitor) { monitor_ = monitor; }

  // Attaches the run's recorder: deploys journal ScheduleDecision (with
  // wall-clock placement latency), moves journal MigrationStarted/
  // MigrationCompleted (every entry in migration_events() has a matching
  // completed event), controller rounds journal ControllerRound, and
  // migration downtime / placement latency feed registry histograms.
  // nullptr detaches.
  void set_recorder(obs::Recorder* recorder);

  // ---- Deployment lifecycle ----
  util::Expected<DeploymentId> deploy(app::AppGraph app, SchedulerKind kind);

  // Deploys with a caller-chosen placement (experiments reproducing the
  // paper's fixed initial deployments, e.g. "Pion server on node 2").
  // Validates resource fit; does NOT check bandwidth feasibility — that is
  // the experimenter's prerogative.
  util::Expected<DeploymentId> deploy_with_placement(app::AppGraph app,
                                                     sched::Placement placement);

  const app::AppGraph& app(DeploymentId id) const;
  const sched::Placement& placement(DeploymentId id) const;
  net::NodeId node_of(DeploymentId id, app::ComponentId component) const;
  bool is_up(DeploymentId id, app::ComponentId component) const;
  void add_listener(DeploymentId id, DeploymentListener* listener);

  // Passive per-pair traffic counters for this deployment; workload engines
  // record into it, the controller reads from it.
  monitor::TrafficStats& traffic_stats(DeploymentId id);

  // Rewrites the profiled bandwidth requirement of one deployed edge — the
  // online-profiling extension (§8) feeds re-measured requirements back so
  // the controller and rescheduler reason about reality instead of the
  // developer's offline estimate. Returns false if no such edge exists.
  bool update_edge_bandwidth(DeploymentId id, app::ComponentId from,
                             app::ComponentId to, net::Bps bandwidth);

  // ---- Migration ----
  void enable_migration(DeploymentId id, controller::MigrationParams params);
  void disable_migration(DeploymentId id);

  // Manual move (used by experiments); true if the migration started.
  bool migrate(DeploymentId id, app::ComponentId component, net::NodeId target);

  // kubectl-drain for the mesh: cordons `node` and migrates every live,
  // unpinned component hosted there (across all deployments) to its best
  // alternative. Community meshes lose nodes to power and weather; drain
  // is how an operator empties one gracefully before it goes. Returns the
  // number of migrations started (pinned or unplaceable components stay
  // and are logged).
  int drain_node(net::NodeId node);

  // Abrupt *compute* failure: the node is cordoned, every component it
  // hosted drops instantly (no graceful handoff, checkpoints on the dead
  // node are lost), and after `detection_delay` the orchestrator cold-
  // restarts each one on a surviving node, retrying periodically while the
  // cluster is too full. The node's radios keep relaying (the paper scopes
  // out network partitions, §3.1) — this models the common mesh failure of
  // a dead compute board behind a live router.
  void fail_node(net::NodeId node, sim::Duration detection_delay = sim::seconds(10));
  // Down/up in place — the Fig. 14(a) restart-overhead experiment.
  void restart_component(DeploymentId id, app::ComponentId component);

  const std::vector<MigrationEvent>& migration_events() const { return migrations_; }
  const std::vector<ControllerRound>& controller_rounds(DeploymentId id) const;

  sim::Simulation& simulation() { return *sim_; }
  net::Network& network() { return *network_; }
  cluster::ClusterState& cluster() { return *cluster_; }

 private:
  struct Deployment {
    app::AppGraph app{"unset"};
    sched::Placement placement;
    std::vector<bool> up;
    std::vector<DeploymentListener*> listeners;
    monitor::TrafficStats stats;
    // Controller state (valid while migration is enabled):
    bool migration_enabled = false;
    controller::MigrationParams params;
    std::unique_ptr<controller::CooldownTracker> cooldown;
    sim::EventId controller_tick = sim::kInvalidEvent;
    std::vector<ControllerRound> rounds;
  };

  Deployment& dep(DeploymentId id);
  const Deployment& dep(DeploymentId id) const;
  // The scheduler's view of the mesh: monitor cache when attached.
  std::unique_ptr<sched::NetworkView> make_view() const;
  void controller_evaluate(DeploymentId id);
  // Executes a move; `target` may equal the current node (pure restart).
  void execute_move(DeploymentId id, app::ComponentId component, net::NodeId target);
  // Post-failure placement retry loop (see fail_node). `went_down` is when
  // the component dropped (journalled downtime spans the whole outage).
  void recover_component(DeploymentId id, app::ComponentId component,
                         net::NodeId failed_node, sim::Time went_down);
  // Appends to migrations_ and journals the matching MigrationCompleted.
  void note_migration_done(DeploymentId id, app::ComponentId component,
                           net::NodeId from, net::NodeId to, sim::Time went_down);

  sim::Simulation* sim_;
  net::Network* network_;
  cluster::ClusterState* cluster_;
  monitor::NetMonitor* monitor_ = nullptr;
  obs::Recorder* recorder_ = nullptr;
  obs::Histogram* m_place_us_ = nullptr;
  obs::Histogram* m_downtime_ms_ = nullptr;
  OrchestratorConfig config_;
  std::vector<std::unique_ptr<Deployment>> deployments_;
  std::vector<MigrationEvent> migrations_;
};

}  // namespace bass::core
