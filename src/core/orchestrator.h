// The BASS orchestrator: the "k3s server + BASS extensions" of Fig. 7.
// It owns deployments (app DAG + current placement + component up/down
// state), schedules with any of the three schedulers, and — when migration
// is enabled — runs the bandwidth-controller loop: read passive traffic
// stats and the net-monitor's capacity cache, apply Algorithm 3, pick a
// target node, and execute the move with a realistic restart outage.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "app/app_graph.h"
#include "cluster/cluster.h"
#include "controller/migration_policy.h"
#include "monitor/net_monitor.h"
#include "monitor/traffic_stats.h"
#include "net/network.h"
#include "obs/recorder.h"
#include "sched/bass_scheduler.h"
#include "sched/placement.h"
#include "sim/simulation.h"
#include "util/expected.h"

namespace bass::core {

enum class SchedulerKind { kBassBfs, kBassLongestPath, kBassAuto, kK3sDefault };

const char* scheduler_kind_name(SchedulerKind kind);

struct OrchestratorConfig {
  // Outage while a component is rescheduled and restarted — ~20 s for the
  // mesh experiments (§6.3.2), ~30 s in the microbenchmarks (§6.2.3).
  sim::Duration restart_duration = sim::seconds(20);
};

using DeploymentId = int;
constexpr DeploymentId kInvalidDeployment = -1;

// Workload engines implement this to follow their components around.
class DeploymentListener {
 public:
  virtual ~DeploymentListener() = default;
  virtual void on_component_down(app::ComponentId component) { (void)component; }
  virtual void on_component_up(app::ComponentId component, net::NodeId node) {
    (void)component;
    (void)node;
  }
};

// Why a component moved — carried on migration events and journal records
// so the invariant checker can apply controller-only rules (cooldown, pair
// rule) without flagging failovers and drains.
enum class MoveReason {
  kManual,      // experiment called migrate()
  kController,  // bandwidth-controller decision (Algorithm 3)
  kDrain,       // operator drain
  kFailover,    // restart after a node failure
  kRestart,     // down/up in place (Fig. 14(a))
};

const char* move_reason_name(MoveReason reason);

struct MigrationEvent {
  sim::Time at;  // when the move completed (component back up)
  DeploymentId deployment;
  app::ComponentId component;
  net::NodeId from;
  net::NodeId to;
  sim::Time started_at = 0;  // when the component went down for the move
  MoveReason reason = MoveReason::kManual;
};

// One controller evaluation round (Table 1's rows).
struct ControllerRound {
  sim::Time at;
  int violating_components;  // exceeding their link utilization quota
  int migrations_started;
};

class Orchestrator {
 public:
  Orchestrator(sim::Simulation& sim, net::Network& network,
               cluster::ClusterState& cluster, OrchestratorConfig config = {});
  ~Orchestrator();
  Orchestrator(const Orchestrator&) = delete;
  Orchestrator& operator=(const Orchestrator&) = delete;

  // With a monitor attached, scheduling and the controller use its probe
  // cache (the real BASS deployment); without one they fall back to live
  // topology capacities (useful for oracle experiments and tests).
  void attach_monitor(monitor::NetMonitor* monitor) { monitor_ = monitor; }

  // Attaches the run's recorder: deploys journal ScheduleDecision (with
  // wall-clock placement latency), moves journal MigrationStarted/
  // MigrationCompleted (every entry in migration_events() has a matching
  // completed event), controller rounds journal ControllerRound, and
  // migration downtime / placement latency feed registry histograms.
  // nullptr detaches.
  void set_recorder(obs::Recorder* recorder);

  // ---- Deployment lifecycle ----
  // `instance` optionally names the deployment for duplicate detection: a
  // second deploy with the name of a still-active instance is rejected (and
  // journals an orchestrator_warning) instead of silently double-applying
  // resources. Empty skips the check — anonymous one-shot experiments keep
  // their historical behavior.
  util::Expected<DeploymentId> deploy(app::AppGraph app, SchedulerKind kind,
                                      const std::string& instance = "");

  // First-class departure: marks every live component down (listeners see
  // on_component_down and close their streams), releases the node resources
  // deploy acquired, cancels the controller loop and any in-flight moves
  // (their bring-up lambdas become no-ops), and journals a typed
  // DeploymentClosed event. Returns false — with a journaled warning — when
  // `id` is unknown or already undeployed. DeploymentIds are never reused.
  bool undeploy(DeploymentId id);

  // False once undeploy(id) ran (ids stay valid for read accessors).
  bool deployment_active(DeploymentId id) const;
  // Active deployment with this instance name, or kInvalidDeployment.
  DeploymentId find_instance(const std::string& instance) const;
  int live_deployment_count() const;

  // Deploys with a caller-chosen placement (experiments reproducing the
  // paper's fixed initial deployments, e.g. "Pion server on node 2").
  // Validates resource fit; does NOT check bandwidth feasibility — that is
  // the experimenter's prerogative.
  util::Expected<DeploymentId> deploy_with_placement(app::AppGraph app,
                                                     sched::Placement placement);

  const app::AppGraph& app(DeploymentId id) const;
  const sched::Placement& placement(DeploymentId id) const;
  net::NodeId node_of(DeploymentId id, app::ComponentId component) const;
  bool is_up(DeploymentId id, app::ComponentId component) const;
  void add_listener(DeploymentId id, DeploymentListener* listener);

  // Passive per-pair traffic counters for this deployment; workload engines
  // record into it, the controller reads from it.
  monitor::TrafficStats& traffic_stats(DeploymentId id);

  // Rewrites the profiled bandwidth requirement of one deployed edge — the
  // online-profiling extension (§8) feeds re-measured requirements back so
  // the controller and rescheduler reason about reality instead of the
  // developer's offline estimate. Returns false if no such edge exists.
  bool update_edge_bandwidth(DeploymentId id, app::ComponentId from,
                             app::ComponentId to, net::Bps bandwidth);

  // ---- Migration ----
  void enable_migration(DeploymentId id, controller::MigrationParams params);
  void disable_migration(DeploymentId id);

  // Manual move (used by experiments); true if the migration started.
  bool migrate(DeploymentId id, app::ComponentId component, net::NodeId target,
               MoveReason reason = MoveReason::kManual);

  // kubectl-drain for the mesh: cordons `node` and migrates every live,
  // unpinned component hosted there (across all deployments) to its best
  // alternative. Community meshes lose nodes to power and weather; drain
  // is how an operator empties one gracefully before it goes. Returns the
  // number of migrations started (pinned or unplaceable components stay
  // and are logged).
  int drain_node(net::NodeId node);

  // Abrupt *compute* failure: the node is cordoned, every component it
  // hosted drops instantly (no graceful handoff, checkpoints on the dead
  // node are lost), and after `detection_delay` the orchestrator cold-
  // restarts each one on a surviving node — pinned components wait for
  // their node to come back — retrying periodically while placement is
  // infeasible. The node's radios keep relaying — this models the common
  // mesh failure of a dead compute board behind a live router. A real
  // network partition (the paper scopes those out, §3.1) is modelled
  // separately by fault::Injector downing the member links via
  // Network::set_link_down, so compute and connectivity fail independently.
  void fail_node(net::NodeId node, sim::Duration detection_delay = sim::seconds(10));
  // The failed node's board was replaced / rebooted: uncordons it and makes
  // it schedulable again. Components pinned there rejoin on their next
  // recovery retry; unpinned work drifts back only when the controller or
  // an operator moves it. Also usable as a plain uncordon after drain_node.
  void recover_node(net::NodeId node);
  bool node_failed(net::NodeId node) const { return failed_nodes_.count(node) != 0; }
  const std::set<net::NodeId>& failed_nodes() const { return failed_nodes_; }
  // Down/up in place — the Fig. 14(a) restart-overhead experiment.
  void restart_component(DeploymentId id, app::ComponentId component);

  const std::vector<MigrationEvent>& migration_events() const { return migrations_; }
  const std::vector<ControllerRound>& controller_rounds(DeploymentId id) const;
  int deployment_count() const { return static_cast<int>(deployments_.size()); }
  // Controller parameters while migration is enabled, else nullptr.
  const controller::MigrationParams* migration_params(DeploymentId id) const;

  // Invoked after every controller evaluation round with the deployment id
  // — the fault::Invariants checker hooks in here.
  void set_round_hook(std::function<void(DeploymentId)> hook) {
    round_hook_ = std::move(hook);
  }

  sim::Simulation& simulation() { return *sim_; }
  net::Network& network() { return *network_; }
  cluster::ClusterState& cluster() { return *cluster_; }

 private:
  struct Deployment {
    app::AppGraph app{"unset"};
    std::string instance;        // duplicate-detection name ("" = anonymous)
    bool active = true;          // false after undeploy
    sim::Time deployed_at = 0;
    sched::Placement placement;
    std::vector<bool> up;
    std::vector<DeploymentListener*> listeners;
    monitor::TrafficStats stats;
    // Controller state (valid while migration is enabled):
    bool migration_enabled = false;
    controller::MigrationParams params;
    std::unique_ptr<controller::CooldownTracker> cooldown;
    sim::EventId controller_tick = sim::kInvalidEvent;
    std::vector<ControllerRound> rounds;
  };

  Deployment& dep(DeploymentId id);
  const Deployment& dep(DeploymentId id) const;
  // Journals an OrchestratorWarning (`what` must be a static literal).
  void warn(const char* what, DeploymentId id, net::NodeId node);
  // The scheduler's view of the mesh: monitor cache when attached.
  std::unique_ptr<sched::NetworkView> make_view() const;
  void controller_evaluate(DeploymentId id);
  // Executes a move; `target` may equal the current node (pure restart).
  void execute_move(DeploymentId id, app::ComponentId component, net::NodeId target,
                    MoveReason reason);
  // Post-failure placement retry loop (see fail_node). `went_down` is when
  // the component dropped (journalled downtime spans the whole outage);
  // `span`/`parent` carry the move's causal identity through the retries so
  // the eventual MigrationCompleted matches its MigrationStarted.
  void recover_component(DeploymentId id, app::ComponentId component,
                         net::NodeId failed_node, sim::Time went_down,
                         obs::SpanId span, obs::SpanId parent);
  // Appends to migrations_ and journals the matching MigrationCompleted.
  void note_migration_done(DeploymentId id, app::ComponentId component,
                           net::NodeId from, net::NodeId to, sim::Time went_down,
                           MoveReason reason, obs::SpanId span,
                           obs::SpanId parent);

  sim::Simulation* sim_;
  net::Network* network_;
  cluster::ClusterState* cluster_;
  monitor::NetMonitor* monitor_ = nullptr;
  obs::Recorder* recorder_ = nullptr;
  obs::LogHistogram* m_place_us_ = nullptr;
  obs::LogHistogram* m_decision_us_ = nullptr;
  obs::Histogram* m_downtime_ms_ = nullptr;
  OrchestratorConfig config_;
  std::vector<std::unique_ptr<Deployment>> deployments_;
  std::vector<MigrationEvent> migrations_;
  std::set<net::NodeId> failed_nodes_;
  std::function<void(DeploymentId)> round_hook_;
};

}  // namespace bass::core
