#include "core/orchestrator.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <set>

#include "sched/k3s_scheduler.h"
#include "sched/rescheduler.h"
#include "util/logging.h"
#include "util/strings.h"

namespace bass::core {

namespace {

// Pinned zero-footprint pseudo-components (client attachment points) take
// no node resources — they may sit on cordoned/client-only nodes.
bool needs_resources(const app::Component& comp) {
  return comp.cpu_milli > 0 || comp.memory_mb > 0;
}

}  // namespace

const char* scheduler_kind_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kBassBfs: return "bass-bfs";
    case SchedulerKind::kBassLongestPath: return "bass-longest-path";
    case SchedulerKind::kBassAuto: return "bass-auto";
    case SchedulerKind::kK3sDefault: return "k3s-default";
  }
  return "?";
}

const char* move_reason_name(MoveReason reason) {
  switch (reason) {
    case MoveReason::kManual: return "manual";
    case MoveReason::kController: return "controller";
    case MoveReason::kDrain: return "drain";
    case MoveReason::kFailover: return "failover";
    case MoveReason::kRestart: return "restart";
  }
  return "?";
}

Orchestrator::Orchestrator(sim::Simulation& sim, net::Network& network,
                           cluster::ClusterState& cluster, OrchestratorConfig config)
    : sim_(&sim), network_(&network), cluster_(&cluster), config_(config) {}

Orchestrator::~Orchestrator() {
  for (auto& d : deployments_) {
    if (d->controller_tick != sim::kInvalidEvent) {
      sim_->cancel_periodic(d->controller_tick);
    }
  }
}

Orchestrator::Deployment& Orchestrator::dep(DeploymentId id) {
  return *deployments_.at(static_cast<std::size_t>(id));
}

const Orchestrator::Deployment& Orchestrator::dep(DeploymentId id) const {
  return *deployments_.at(static_cast<std::size_t>(id));
}

void Orchestrator::warn(const char* what, DeploymentId id, net::NodeId node) {
  if (recorder_ == nullptr) return;
  obs::OrchestratorWarning w;
  w.at = sim_->now();
  w.what = what;
  w.deployment = id;
  w.node = node;
  w.span = recorder_->new_span();
  w.parent = recorder_->current_span();
  recorder_->record(w);
}

void Orchestrator::set_recorder(obs::Recorder* recorder) {
  recorder_ = recorder;
  if (recorder == nullptr) {
    m_place_us_ = nullptr;
    m_decision_us_ = nullptr;
    m_downtime_ms_ = nullptr;
    return;
  }
  m_place_us_ = &recorder->metrics().log_timer_us("sched.place_us");
  m_decision_us_ = &recorder->metrics().log_timer_us("orchestrator.decision_us");
  m_downtime_ms_ = &recorder->metrics().histogram(
      "orchestrator.migration_downtime_ms",
      {1, 10, 100, 1000, 5000, 10000, 20000, 30000, 60000, 120000});
}

std::unique_ptr<sched::NetworkView> Orchestrator::make_view() const {
  if (monitor_ != nullptr) {
    return std::make_unique<monitor::MonitorNetworkView>(*monitor_);
  }
  return std::make_unique<sched::LiveNetworkView>(*network_);
}

util::Expected<DeploymentId> Orchestrator::deploy(app::AppGraph app, SchedulerKind kind,
                                                  const std::string& instance) {
  if (!instance.empty() && find_instance(instance) != kInvalidDeployment) {
    // Double-applying would reserve the app's resources a second time under
    // the same identity; reject loudly instead.
    warn("duplicate_deployment", find_instance(instance), net::kInvalidNode);
    util::log_warn() << "deploy: instance '" << instance << "' is already active";
    return util::make_error("instance '" + instance + "' is already deployed");
  }
  const auto view = make_view();
  std::unique_ptr<sched::Scheduler> scheduler;
  switch (kind) {
    case SchedulerKind::kBassBfs:
      scheduler = std::make_unique<sched::BassScheduler>(sched::Heuristic::kBreadthFirst);
      break;
    case SchedulerKind::kBassLongestPath:
      scheduler = std::make_unique<sched::BassScheduler>(sched::Heuristic::kLongestPath);
      break;
    case SchedulerKind::kBassAuto:
      scheduler = std::make_unique<sched::BassScheduler>(sched::Heuristic::kAuto);
      break;
    case SchedulerKind::kK3sDefault:
      scheduler = std::make_unique<sched::K3sScheduler>();
      break;
  }

  const auto t0 = std::chrono::steady_clock::now();
  auto result = scheduler->schedule(app, *cluster_, *view);
  const double place_us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  if (recorder_ != nullptr) {
    m_place_us_->observe(place_us);
    obs::ScheduleDecision decision;
    decision.at = sim_->now();
    decision.deployment = static_cast<int>(deployments_.size());
    decision.scheduler = scheduler->name();
    decision.components = app.component_count();
    decision.place_us = place_us;
    decision.success = result.ok();
    decision.span = recorder_->new_span();
    decision.parent = recorder_->current_span();
    if (result.ok()) {
      decision.crossing_bps = sched::crossing_bandwidth(app, result.value());
    }
    recorder_->record(std::move(decision));
  }
  if (!result.ok()) return util::make_error(result.error());

  auto d = std::make_unique<Deployment>();
  d->app = std::move(app);
  d->instance = instance;
  d->deployed_at = sim_->now();
  d->placement = result.take();
  d->up.assign(static_cast<std::size_t>(d->app.component_count()), true);
  for (const auto& [component, node] : d->placement) {
    const auto& comp = d->app.component(component);
    if (!needs_resources(comp)) continue;
    const bool ok = cluster_->allocate(node, comp.cpu_milli, comp.memory_mb);
    assert(ok && "scheduler produced an infeasible placement");
    (void)ok;
  }

  const DeploymentId id = static_cast<DeploymentId>(deployments_.size());
  deployments_.push_back(std::move(d));
  util::log_info() << "deployed '" << deployments_.back()->app.name() << "' with "
                   << scheduler_kind_name(kind);
  return id;
}

util::Expected<DeploymentId> Orchestrator::deploy_with_placement(
    app::AppGraph app, sched::Placement placement) {
  std::string error;
  if (!app.validate(&error)) return util::make_error(error);
  for (app::ComponentId c = 0; c < app.component_count(); ++c) {
    const auto& comp = app.component(c);
    if (comp.pinned_node) placement[c] = *comp.pinned_node;
    if (!placement.count(c)) {
      return util::make_error("manual placement misses component '" + comp.name + "'");
    }
  }
  // All-or-nothing resource reservation.
  std::vector<std::pair<net::NodeId, app::ComponentId>> reserved;
  for (const auto& [component, node] : placement) {
    const auto& comp = app.component(component);
    if (!needs_resources(comp)) continue;
    if (!cluster_->allocate(node, comp.cpu_milli, comp.memory_mb)) {
      for (const auto& [n, c] : reserved) {
        const auto& rc = app.component(c);
        cluster_->release(n, rc.cpu_milli, rc.memory_mb);
      }
      return util::make_error("node cannot fit component '" + comp.name + "'");
    }
    reserved.emplace_back(node, component);
  }

  auto d = std::make_unique<Deployment>();
  d->app = std::move(app);
  d->deployed_at = sim_->now();
  d->placement = std::move(placement);
  d->up.assign(static_cast<std::size_t>(d->app.component_count()), true);
  const DeploymentId id = static_cast<DeploymentId>(deployments_.size());
  deployments_.push_back(std::move(d));
  if (recorder_ != nullptr) {
    const Deployment& placed = *deployments_.back();
    obs::ScheduleDecision decision;
    decision.at = sim_->now();
    decision.deployment = id;
    decision.scheduler = "manual";
    decision.components = placed.app.component_count();
    decision.crossing_bps = sched::crossing_bandwidth(placed.app, placed.placement);
    decision.success = true;
    decision.span = recorder_->new_span();
    decision.parent = recorder_->current_span();
    recorder_->record(std::move(decision));
  }
  return id;
}

const app::AppGraph& Orchestrator::app(DeploymentId id) const { return dep(id).app; }

const sched::Placement& Orchestrator::placement(DeploymentId id) const {
  return dep(id).placement;
}

net::NodeId Orchestrator::node_of(DeploymentId id, app::ComponentId component) const {
  return sched::node_of(dep(id).placement, component);
}

bool Orchestrator::is_up(DeploymentId id, app::ComponentId component) const {
  return dep(id).up.at(static_cast<std::size_t>(component));
}

void Orchestrator::add_listener(DeploymentId id, DeploymentListener* listener) {
  dep(id).listeners.push_back(listener);
}

monitor::TrafficStats& Orchestrator::traffic_stats(DeploymentId id) {
  return dep(id).stats;
}

bool Orchestrator::update_edge_bandwidth(DeploymentId id, app::ComponentId from,
                                         app::ComponentId to, net::Bps bandwidth) {
  return dep(id).app.set_edge_bandwidth(from, to, bandwidth);
}

bool Orchestrator::deployment_active(DeploymentId id) const {
  return id >= 0 && id < static_cast<DeploymentId>(deployments_.size()) &&
         dep(id).active;
}

DeploymentId Orchestrator::find_instance(const std::string& instance) const {
  if (instance.empty()) return kInvalidDeployment;
  for (DeploymentId id = 0; id < static_cast<DeploymentId>(deployments_.size()); ++id) {
    const Deployment& d = dep(id);
    if (d.active && d.instance == instance) return id;
  }
  return kInvalidDeployment;
}

int Orchestrator::live_deployment_count() const {
  int live = 0;
  for (const auto& d : deployments_) {
    if (d->active) ++live;
  }
  return live;
}

bool Orchestrator::undeploy(DeploymentId id) {
  if (!deployment_active(id)) {
    warn("undeploy_inactive", id, net::kInvalidNode);
    util::log_warn() << "undeploy: deployment " << id << " is not active";
    return false;
  }
  Deployment& d = dep(id);
  // Stop the controller first so no new moves start mid-teardown; in-flight
  // bring-up/recovery callbacks check `active` and become no-ops.
  disable_migration(id);
  int torn_down = 0;
  for (app::ComponentId c = 0; c < d.app.component_count(); ++c) {
    if (!d.up[static_cast<std::size_t>(c)]) continue;  // mid-move: already released
    const auto& comp = d.app.component(c);
    d.up[static_cast<std::size_t>(c)] = false;
    if (needs_resources(comp)) {
      cluster_->release(node_of(id, c), comp.cpu_milli, comp.memory_mb);
    }
    for (DeploymentListener* l : d.listeners) l->on_component_down(c);
    ++torn_down;
  }
  d.active = false;
  d.listeners.clear();
  util::log_info() << "undeployed '" << d.app.name() << "' (" << torn_down
                   << " components)";
  if (recorder_ != nullptr) {
    obs::DeploymentClosed closed;
    closed.at = sim_->now();
    closed.deployment = id;
    closed.components = torn_down;
    closed.lifetime = sim_->now() - d.deployed_at;
    closed.span = recorder_->new_span();
    closed.parent = recorder_->current_span();
    recorder_->record(closed);
  }
  return true;
}

void Orchestrator::enable_migration(DeploymentId id, controller::MigrationParams params) {
  Deployment& d = dep(id);
  if (d.migration_enabled) disable_migration(id);
  d.migration_enabled = true;
  d.params = params;
  d.cooldown = std::make_unique<controller::CooldownTracker>(params);
  d.controller_tick = sim_->schedule_periodic(
      params.evaluation_interval, [this, id] { controller_evaluate(id); });
}

void Orchestrator::disable_migration(DeploymentId id) {
  Deployment& d = dep(id);
  if (!d.migration_enabled) return;
  d.migration_enabled = false;
  sim_->cancel_periodic(d.controller_tick);
  d.controller_tick = sim::kInvalidEvent;
  d.cooldown.reset();
}

const std::vector<ControllerRound>& Orchestrator::controller_rounds(DeploymentId id) const {
  return dep(id).rounds;
}

const controller::MigrationParams* Orchestrator::migration_params(DeploymentId id) const {
  const Deployment& d = dep(id);
  return d.migration_enabled ? &d.params : nullptr;
}

void Orchestrator::controller_evaluate(DeploymentId id) {
  Deployment& d = dep(id);
  if (!d.active) return;  // tick raced an undeploy in the same round
  const auto view = make_view();
  const sim::Time now = sim_->now();

  // Every round gets a span up front (ids from the deterministic counter,
  // so same-seed runs match) and holds it as the current cause for the
  // whole evaluation: migrations started below, reallocations the network
  // solves for them, and anything the round hook journals (invariant
  // violations) all get parent = this round.
  const obs::SpanId round_span =
      recorder_ != nullptr ? recorder_->new_span() : obs::kNoSpan;
  obs::SpanScope round_scope(recorder_, round_span);
  const auto wall_start = std::chrono::steady_clock::now();

  // Observations for every mesh-crossing edge between live components.
  std::vector<controller::EdgeObservation> observations;
  std::vector<std::pair<net::NodeId, net::NodeId>> endpoints;  // parallel to obs
  for (const app::Edge& e : d.app.edges()) {
    if (!is_up(id, e.from) || !is_up(id, e.to)) continue;
    const net::NodeId a = node_of(id, e.from);
    const net::NodeId b = node_of(id, e.to);
    const auto window = d.stats.take_window(e.from, e.to, now);
    if (a == b) continue;  // colocated pairs never violate
    controller::EdgeObservation obs;
    obs.from = e.from;
    obs.to = e.to;
    obs.required = e.bandwidth;
    obs.measured = window.delivered;
    obs.offered = window.offered;
    obs.path_capacity = view->path_capacity(a, b);
    observations.push_back(obs);
    endpoints.emplace_back(a, b);
  }

  // Headroom state per path, from two passive signals (§4.2/§4.3):
  //  * probed — the net-monitor could not push its spare-capacity probe
  //    through ("when a change is detected in the available headroom"), and
  //  * usage — the deployment's own measured traffic leaves less than
  //    headroom_frac of a link's capacity free ("the component uses the
  //    link to the extent that the headroom on the link shrinks even
  //    without capacity change on the link"). Pair traffic flows both ways
  //    (requests and responses), so it is charged to both directions.
  std::vector<double> link_usage(static_cast<std::size_t>(view->link_count()), 0.0);
  for (std::size_t i = 0; i < observations.size(); ++i) {
    const auto [a, b] = endpoints[i];
    for (net::LinkId l : view->path(a, b)) {
      link_usage[static_cast<std::size_t>(l)] += static_cast<double>(observations[i].measured);
    }
    for (net::LinkId l : view->path(b, a)) {
      link_usage[static_cast<std::size_t>(l)] += static_cast<double>(observations[i].measured);
    }
  }
  auto link_headroom_ok = [&](net::LinkId l) {
    if (monitor_ != nullptr && !monitor_->headroom_ok(l)) return false;
    const double capacity = static_cast<double>(view->link_capacity(l));
    return link_usage[static_cast<std::size_t>(l)] <=
           capacity * (1.0 - d.params.headroom_frac);
  };
  for (std::size_t i = 0; i < observations.size(); ++i) {
    const auto [a, b] = endpoints[i];
    for (net::LinkId l : view->path(a, b)) {
      if (!link_headroom_ok(l)) {
        observations[i].path_headroom_ok = false;
        break;
      }
    }
    util::log_debug() << "obs t=" << sim::to_seconds(now) << " "
                      << d.app.component(observations[i].from).name << "->"
                      << d.app.component(observations[i].to).name
                      << " req=" << observations[i].required
                      << " meas=" << observations[i].measured
                      << " off=" << observations[i].offered
                      << " cap=" << observations[i].path_capacity
                      << " hdroom_ok=" << observations[i].path_headroom_ok
                      << " violates="
                      << controller::edge_violates(observations[i], d.params);
  }

  // Pre-dedup violating component set (Table 1's "components exceeding
  // link utilization quota") and the violating-pair adjacency, used below
  // to substitute a partner when a chosen candidate has nowhere to go.
  std::set<app::ComponentId> violating;
  std::vector<std::pair<app::ComponentId, app::ComponentId>> violating_pairs;
  for (const auto& obs : observations) {
    if (!controller::edge_violates(obs, d.params)) continue;
    if (!d.app.component(obs.from).pinned_node) violating.insert(obs.from);
    if (!d.app.component(obs.to).pinned_node) violating.insert(obs.to);
    violating_pairs.emplace_back(obs.from, obs.to);
  }

  const auto candidates =
      controller::select_migration_candidates(d.app, observations, d.params);

  // Cooldown state tracks *violation* persistence (a component deduped
  // away this round is still violating — its timer must keep running so it
  // can substitute for an unplaceable partner).
  std::set<app::ComponentId> eligible;
  for (app::ComponentId c = 0; c < d.app.component_count(); ++c) {
    if (d.cooldown->should_migrate(c, violating.count(c) != 0, now)) {
      eligible.insert(c);
    }
  }
  // Execute in candidate (heaviest-first) order, capped per round.
  std::vector<app::ComponentId> cleared;
  for (app::ComponentId c : candidates) {
    if (eligible.count(c)) cleared.push_back(c);
  }

  std::set<app::ComponentId> moved_this_round;
  int started = 0;
  for (app::ComponentId c : cleared) {
    if (d.params.max_migrations_per_round > 0 &&
        started >= d.params.max_migrations_per_round) {
      break;
    }
    if (moved_this_round.count(c)) continue;
    app::ComponentId mover = c;
    auto target = sched::pick_migration_target(d.app, d.placement, c, *cluster_, *view);
    if (!target) {
      // The pair rule held this candidate's partners back; moving a partner
      // *instead* (never in addition) is allowed and often feasible when
      // the primary is not (§3.2.2 only forbids moving both).
      for (const auto& [from, to] : violating_pairs) {
        if (from != c && to != c) continue;
        const app::ComponentId partner = (from == c) ? to : from;
        if (partner == c || moved_this_round.count(partner)) continue;
        if (d.app.component(partner).pinned_node) continue;
        if (!eligible.count(partner)) continue;
        target = sched::pick_migration_target(d.app, d.placement, partner, *cluster_,
                                              *view);
        if (target) {
          mover = partner;
          break;
        }
      }
    }
    if (!target) {
      util::log_warn() << "no feasible migration target for '"
                       << d.app.component(c).name << "' or its partners";
      continue;
    }
    d.cooldown->note_migration(mover, now);
    if (migrate(id, mover, *target, MoveReason::kController)) {
      ++started;
      moved_this_round.insert(mover);
      // The pair rule: the partner(s) of a moved component stay put.
      for (const auto& [from, to] : violating_pairs) {
        if (from == mover) moved_this_round.insert(to);
        if (to == mover) moved_this_round.insert(from);
      }
    }
  }

  if (recorder_ != nullptr) {
    // Decision latency covers the full evaluation — observations, headroom
    // math, candidate selection, and starting the moves — for every round,
    // including the quiet ones: p99 over only busy rounds would flatter us.
    m_decision_us_->observe(std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - wall_start)
                                .count());
  }
  if (!violating.empty() || started > 0) {
    d.rounds.push_back({now, static_cast<int>(violating.size()), started});
    if (recorder_ != nullptr) {
      obs::ControllerRound round;
      round.at = now;
      round.deployment = id;
      round.violating = static_cast<int>(violating.size());
      round.migrations_started = started;
      round.span = round_span;
      recorder_->record(round);
    }
  }
  if (round_hook_) round_hook_(id);
}

void Orchestrator::note_migration_done(DeploymentId id, app::ComponentId component,
                                       net::NodeId from, net::NodeId to,
                                       sim::Time went_down, MoveReason reason,
                                       obs::SpanId span, obs::SpanId parent) {
  const sim::Time now = sim_->now();
  migrations_.push_back({now, id, component, from, to,
                         went_down >= 0 ? went_down : now, reason});
  if (recorder_ == nullptr) return;
  const sim::Duration downtime = went_down >= 0 ? now - went_down : 0;
  m_downtime_ms_->observe(sim::to_millis(downtime));
  // Same span as the MigrationStarted: started/completed are two ends of
  // one move, and the shared id is what `bassctl journal query --span`
  // stitches them back together with.
  recorder_->record(obs::MigrationCompleted{now, id, component, from, to, downtime,
                                            move_reason_name(reason), span, parent});
}

bool Orchestrator::migrate(DeploymentId id, app::ComponentId component,
                           net::NodeId target, MoveReason reason) {
  Deployment& d = dep(id);
  if (!is_up(id, component)) return false;
  if (d.app.component(component).pinned_node) return false;
  if (target == node_of(id, component)) return false;
  execute_move(id, component, target, reason);
  return true;
}

int Orchestrator::drain_node(net::NodeId node) {
  cluster_->set_schedulable(node, false);
  const auto view = make_view();
  int started = 0;
  for (DeploymentId id = 0; id < static_cast<DeploymentId>(deployments_.size()); ++id) {
    Deployment& d = dep(id);
    for (app::ComponentId c = 0; c < d.app.component_count(); ++c) {
      if (!is_up(id, c) || node_of(id, c) != node) continue;
      if (d.app.component(c).pinned_node) {
        util::log_warn() << "drain: '" << d.app.component(c).name
                         << "' is pinned to node" << node << " and cannot move";
        continue;
      }
      const auto target = sched::pick_migration_target(d.app, d.placement, c,
                                                       *cluster_, *view);
      if (!target) {
        util::log_warn() << "drain: no target for '" << d.app.component(c).name
                         << "'";
        continue;
      }
      if (migrate(id, c, *target, MoveReason::kDrain)) ++started;
    }
  }
  return started;
}

void Orchestrator::fail_node(net::NodeId node, sim::Duration detection_delay) {
  if (failed_nodes_.count(node)) {
    // Idempotent, but loudly so: double-failing used to be silent, which
    // hid injector/scenario bugs that fired the same crash twice.
    warn("node_already_failed", kInvalidDeployment, node);
    util::log_warn() << "fail_node: node" << node << " is already down";
    return;
  }
  failed_nodes_.insert(node);
  cluster_->set_schedulable(node, false);
  int dropped = 0;
  for (DeploymentId id = 0; id < static_cast<DeploymentId>(deployments_.size()); ++id) {
    Deployment& d = dep(id);
    for (app::ComponentId c = 0; c < d.app.component_count(); ++c) {
      if (!is_up(id, c) || node_of(id, c) != node) continue;
      const auto& comp = d.app.component(c);
      d.up[static_cast<std::size_t>(c)] = false;
      if (comp.cpu_milli > 0 || comp.memory_mb > 0) {
        cluster_->release(node, comp.cpu_milli, comp.memory_mb);
      }
      for (DeploymentListener* l : d.listeners) l->on_component_down(c);
      ++dropped;
      // Recovery after detection + cold restart; retries internally while
      // the cluster is too full.
      const sim::Time went_down = sim_->now();
      obs::SpanId span = obs::kNoSpan;
      obs::SpanId parent = obs::kNoSpan;
      if (recorder_ != nullptr) {
        // Outage begins now; the landing node is unknown until recovery.
        // When the fault injector triggered this failure, its fault span is
        // the current cause and becomes this move's parent.
        span = recorder_->new_span();
        parent = recorder_->current_span();
        recorder_->record(obs::MigrationStarted{
            went_down, id, c, node, net::kInvalidNode,
            move_reason_name(MoveReason::kFailover), span, parent});
      }
      sim_->schedule_after(detection_delay + config_.restart_duration,
                           [this, id, c, node, went_down, span, parent] {
                             recover_component(id, c, node, went_down, span,
                                               parent);
                           });
    }
  }
  util::log_info() << "node" << node << " failed; " << dropped << " components dropped";
}

void Orchestrator::recover_node(net::NodeId node) {
  failed_nodes_.erase(node);
  cluster_->set_schedulable(node, true);
  util::log_info() << "node" << node << " recovered (schedulable again)";
}

void Orchestrator::recover_component(DeploymentId id, app::ComponentId component,
                                     net::NodeId failed_node, sim::Time went_down,
                                     obs::SpanId span, obs::SpanId parent) {
  Deployment& d = dep(id);
  // The deployment departed while this component was waiting out its
  // outage: stop the retry loop instead of reviving a ghost.
  if (!d.active) return;
  const auto& comp = d.app.component(component);
  auto retry = [this, id, component, failed_node, went_down, span, parent] {
    sim_->schedule_after(
        sim::seconds(30), [this, id, component, failed_node, went_down, span, parent] {
          recover_component(id, component, failed_node, went_down, span, parent);
        });
  };
  if (comp.pinned_node) {
    // Pinned components can only live on their node: wait for it to come
    // back (recover_node), then restart in place.
    const net::NodeId pinned = *comp.pinned_node;
    if (failed_nodes_.count(pinned) != 0 ||
        (needs_resources(comp) &&
         !cluster_->allocate(pinned, comp.cpu_milli, comp.memory_mb))) {
      util::log_warn() << "'" << comp.name << "' is pinned to down node"
                       << pinned << "; retrying";
      retry();
      return;
    }
    d.placement[component] = pinned;
    d.up[static_cast<std::size_t>(component)] = true;
    note_migration_done(id, component, failed_node, pinned, went_down,
                        MoveReason::kFailover, span, parent);
    for (DeploymentListener* l : d.listeners) l->on_component_up(component, pinned);
    return;
  }
  const auto view = make_view();
  const auto target =
      sched::pick_migration_target(d.app, d.placement, component, *cluster_, *view);
  if (target && cluster_->allocate(*target, comp.cpu_milli, comp.memory_mb)) {
    d.placement[component] = *target;
    d.up[static_cast<std::size_t>(component)] = true;
    note_migration_done(id, component, failed_node, *target, went_down,
                        MoveReason::kFailover, span, parent);
    for (DeploymentListener* l : d.listeners) l->on_component_up(component, *target);
    return;
  }
  util::log_warn() << "no surviving node for '" << comp.name << "'; retrying";
  retry();
}

void Orchestrator::restart_component(DeploymentId id, app::ComponentId component) {
  if (!is_up(id, component)) return;
  execute_move(id, component, node_of(id, component), MoveReason::kRestart);
}

void Orchestrator::execute_move(DeploymentId id, app::ComponentId component,
                                net::NodeId target, MoveReason reason) {
  Deployment& d = dep(id);
  const net::NodeId from = node_of(id, component);
  const auto& comp = d.app.component(component);

  d.up[static_cast<std::size_t>(component)] = false;
  cluster_->release(from, comp.cpu_milli, comp.memory_mb);
  for (DeploymentListener* l : d.listeners) l->on_component_down(component);
  util::log_info() << "moving '" << comp.name << "' node" << from << " -> node"
                   << target << " (restart " << sim::to_seconds(config_.restart_duration)
                   << " s, state " << comp.state_mb << " MiB)";
  const sim::Time went_down = sim_->now();
  obs::SpanId span = obs::kNoSpan;
  obs::SpanId parent = obs::kNoSpan;
  if (recorder_ != nullptr) {
    // A controller-round scope (or a fault scope, for injector-driven
    // moves) is open right now; capture it as the move's cause before the
    // asynchronous bring-up outlives it.
    span = recorder_->new_span();
    parent = recorder_->current_span();
    recorder_->record(obs::MigrationStarted{went_down, id, component, from, target,
                                            move_reason_name(reason), span, parent});
  }

  auto bring_up = [this, id, component, from, target, went_down, reason, span,
                   parent] {
    Deployment& d2 = dep(id);
    if (!d2.active) return;  // undeployed mid-move: the migration is void
    const auto& c2 = d2.app.component(component);
    net::NodeId final_target = target;
    if (needs_resources(c2) &&
        !cluster_->allocate(final_target, c2.cpu_milli, c2.memory_mb)) {
      // The target filled up while we were moving; fall back to the old
      // node, which we know fit the component a restart ago.
      final_target = from;
      if (!cluster_->allocate(final_target, c2.cpu_milli, c2.memory_mb)) {
        // Both ends are gone — the old node failed or was cordoned while
        // the move was in flight (the chaos case). Fall into the failure
        // retry loop instead of reviving the component on a dead node.
        util::log_warn() << "'" << c2.name
                         << "' lost both move endpoints; entering recovery";
        recover_component(id, component, from, went_down, span, parent);
        return;
      }
    }
    d2.placement[component] = final_target;
    d2.up[static_cast<std::size_t>(component)] = true;
    note_migration_done(id, component, from, final_target, went_down, reason, span,
                        parent);
    for (DeploymentListener* l : d2.listeners) {
      l->on_component_up(component, final_target);
    }
  };

  // Stateful components ship their checkpoint across the mesh first (§8);
  // the restart timer runs only once the state has landed. The transfer is
  // real traffic, so migrating a fat component loads the very links the
  // migration is trying to relieve.
  if (comp.state_mb > 0 && target != from) {
    network_->start_transfer(from, target, comp.state_mb * 1024 * 1024,
                             [this, bring_up = std::move(bring_up)] {
                               sim_->schedule_after(config_.restart_duration,
                                                    bring_up);
                             });
  } else {
    sim_->schedule_after(config_.restart_duration, std::move(bring_up));
  }
}

}  // namespace bass::core
