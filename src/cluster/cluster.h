// Compute-side resource accounting: per-node CPU (milli-cores, Kubernetes
// style) and memory (MiB) capacities with allocation tracking. Nodes are
// identified by their network NodeId so placement ties directly into the
// mesh topology.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/types.h"

namespace bass::cluster {

struct NodeSpec {
  std::int64_t cpu_milli = 0;   // 1000 = one core
  std::int64_t memory_mb = 0;   // MiB
  bool schedulable = true;      // false for control-plane nodes
};

struct NodeUsage {
  std::int64_t cpu_milli = 0;
  std::int64_t memory_mb = 0;
};

class ClusterState {
 public:
  // Registers a node. `node` must match the network topology's NodeId.
  void add_node(net::NodeId node, NodeSpec spec);

  // Cordons/uncordons a node after registration (kubectl-cordon style).
  void set_schedulable(net::NodeId node, bool schedulable);

  bool has_node(net::NodeId node) const;
  const NodeSpec& spec(net::NodeId node) const;
  const NodeUsage& usage(net::NodeId node) const;

  std::int64_t cpu_free(net::NodeId node) const;
  std::int64_t memory_free(net::NodeId node) const;

  // True if the node is schedulable and can host the extra demand.
  bool can_fit(net::NodeId node, std::int64_t cpu_milli, std::int64_t memory_mb) const;

  // Reserves resources; returns false (and changes nothing) if it can't fit.
  bool allocate(net::NodeId node, std::int64_t cpu_milli, std::int64_t memory_mb);
  void release(net::NodeId node, std::int64_t cpu_milli, std::int64_t memory_mb);

  // All registered nodes, in registration order.
  const std::vector<net::NodeId>& nodes() const { return order_; }
  std::vector<net::NodeId> schedulable_nodes() const;

 private:
  struct Entry {
    NodeSpec spec;
    NodeUsage usage;
  };
  const Entry& entry(net::NodeId node) const;
  Entry& entry(net::NodeId node);

  std::vector<std::optional<Entry>> entries_;  // indexed by NodeId
  std::vector<net::NodeId> order_;
};

}  // namespace bass::cluster
