#include "cluster/cluster.h"

#include <cassert>

namespace bass::cluster {

void ClusterState::add_node(net::NodeId node, NodeSpec spec) {
  assert(node >= 0);
  if (static_cast<std::size_t>(node) >= entries_.size()) {
    entries_.resize(static_cast<std::size_t>(node) + 1);
  }
  assert(!entries_[static_cast<std::size_t>(node)].has_value() && "node already added");
  entries_[static_cast<std::size_t>(node)] = Entry{spec, NodeUsage{}};
  order_.push_back(node);
}

void ClusterState::set_schedulable(net::NodeId node, bool schedulable) {
  entry(node).spec.schedulable = schedulable;
}

bool ClusterState::has_node(net::NodeId node) const {
  return node >= 0 && static_cast<std::size_t>(node) < entries_.size() &&
         entries_[static_cast<std::size_t>(node)].has_value();
}

const ClusterState::Entry& ClusterState::entry(net::NodeId node) const {
  assert(has_node(node));
  return *entries_[static_cast<std::size_t>(node)];
}

ClusterState::Entry& ClusterState::entry(net::NodeId node) {
  assert(has_node(node));
  return *entries_[static_cast<std::size_t>(node)];
}

const NodeSpec& ClusterState::spec(net::NodeId node) const { return entry(node).spec; }

const NodeUsage& ClusterState::usage(net::NodeId node) const { return entry(node).usage; }

std::int64_t ClusterState::cpu_free(net::NodeId node) const {
  const Entry& e = entry(node);
  return e.spec.cpu_milli - e.usage.cpu_milli;
}

std::int64_t ClusterState::memory_free(net::NodeId node) const {
  const Entry& e = entry(node);
  return e.spec.memory_mb - e.usage.memory_mb;
}

bool ClusterState::can_fit(net::NodeId node, std::int64_t cpu_milli,
                           std::int64_t memory_mb) const {
  if (!has_node(node)) return false;
  const Entry& e = entry(node);
  if (!e.spec.schedulable) return false;
  return cpu_free(node) >= cpu_milli && memory_free(node) >= memory_mb;
}

bool ClusterState::allocate(net::NodeId node, std::int64_t cpu_milli,
                            std::int64_t memory_mb) {
  if (!can_fit(node, cpu_milli, memory_mb)) return false;
  Entry& e = entry(node);
  e.usage.cpu_milli += cpu_milli;
  e.usage.memory_mb += memory_mb;
  return true;
}

void ClusterState::release(net::NodeId node, std::int64_t cpu_milli,
                           std::int64_t memory_mb) {
  Entry& e = entry(node);
  e.usage.cpu_milli -= cpu_milli;
  e.usage.memory_mb -= memory_mb;
  assert(e.usage.cpu_milli >= 0 && e.usage.memory_mb >= 0);
}

std::vector<net::NodeId> ClusterState::schedulable_nodes() const {
  std::vector<net::NodeId> out;
  for (net::NodeId n : order_) {
    if (entry(n).spec.schedulable) out.push_back(n);
  }
  return out;
}

}  // namespace bass::cluster
