#include "exec/pool.h"

#include <algorithm>

namespace bass::exec {

Pool::Pool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Pool::~Pool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Drain first: destruction must not drop submitted work on the floor.
    cv_idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void Pool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(Task{next_id_++, std::move(task)});
  }
  cv_work_.notify_one();
}

void Pool::wait() {
  std::exception_ptr first;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
    if (!errors_.empty()) {
      auto lowest = std::min_element(
          errors_.begin(), errors_.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      first = lowest->second;
      errors_.clear();
    }
  }
  if (first) std::rethrow_exception(first);
}

void Pool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with nothing left to do
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    std::exception_ptr error;
    try {
      task.fn();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error) errors_.emplace_back(task.id, error);
      --running_;
      if (queue_.empty() && running_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t threads, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (threads <= 1) {
    // Inline serial path with the same run-everything / rethrow-lowest
    // semantics as the threaded one, so `--jobs 1` is a true baseline.
    std::exception_ptr first;
    std::size_t first_index = 0;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!first || i < first_index) {
          first = std::current_exception();
          first_index = i;
        }
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }
  Pool pool(std::min(threads, count));
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait();
}

}  // namespace bass::exec
