#include "exec/sweep.h"

#include <thread>
#include <variant>

#include "exec/pool.h"
#include "obs/recorder.h"

namespace bass::exec {

void apply_overrides(util::IniFile& ini, const std::vector<IniOverride>& overrides) {
  for (const IniOverride& o : overrides) {
    util::IniSection* section = nullptr;
    for (util::IniSection& candidate : ini.sections) {
      if (candidate.kind() == o.kind) {
        section = &candidate;
        break;
      }
    }
    if (section == nullptr) {
      ini.sections.push_back(util::IniSection{{o.kind}, {}});
      section = &ini.sections.back();
    }
    bool replaced = false;
    for (auto& [key, value] : section->entries) {
      if (key == o.key) {
        value = o.value;
        replaced = true;
        break;
      }
    }
    if (!replaced) section->entries.emplace_back(o.key, o.value);
  }
}

util::Expected<SweepArtifacts> SweepArtifacts::load(const std::string& path) {
  auto ini = util::load_ini(path);
  if (!ini.ok()) return util::make_error(ini.error());
  return from_ini(ini.take());
}

util::Expected<SweepArtifacts> SweepArtifacts::from_ini(util::IniFile ini) {
  SweepArtifacts out;
  out.ini = std::make_shared<const util::IniFile>(std::move(ini));
  auto assets = scenario::ScenarioAssets::preload(*out.ini);
  if (!assets.ok()) return util::make_error(assets.error());
  out.assets = assets.take();
  return out;
}

namespace {

RunOutcome run_one(const SweepArtifacts& artifacts, const RunSpec& spec) {
  RunOutcome out;
  out.label = spec.label;

  // Runs with no deltas share the parsed ini outright; otherwise patch a
  // private copy (still far cheaper than re-reading the file).
  const util::IniFile* ini = artifacts.ini.get();
  util::IniFile patched;
  if (!spec.overrides.empty()) {
    patched = *artifacts.ini;
    apply_overrides(patched, spec.overrides);
    ini = &patched;
  }

  auto s = scenario::Scenario::from_ini(*ini, artifacts.assets.get());
  if (!s.ok()) {
    out.error = s.error();
    return out;
  }
  scenario::Scenario& scene = *s.value();

  // Kernel profiling scopes (BASS_OBS_SCOPE) resolve through the calling
  // thread's recorder slot: bind this run's recorder so its timings never
  // land in a concurrently running neighbour.
  {
    obs::ScopedGlobalRecorder bind(&scene.recorder());
    out.report = scene.run();
  }

  core::Orchestrator& orch = scene.orchestrator();
  for (const core::MigrationEvent& ev : orch.migration_events()) {
    if (ev.reason == core::MoveReason::kFailover) {
      out.recovery_s.push_back(sim::to_seconds(ev.at - ev.started_at));
    }
  }
  for (core::DeploymentId id = 0; id < orch.deployment_count(); ++id) {
    for (app::ComponentId c = 0; c < orch.app(id).component_count(); ++c) {
      if (!orch.is_up(id, c)) ++out.components_down;
    }
  }
  scene.recorder().journal().for_each([&out](const obs::Event& e) {
    if (std::holds_alternative<obs::FaultInjected>(e)) {
      obs::append_jsonl(e, out.fault_events);
      out.fault_events += '\n';
    }
  });
  out.journal = scene.recorder().journal().to_jsonl();
  out.metrics_json = scene.recorder().metrics().to_json(scene.now());
  scene.recorder().metrics().for_each_log_histogram(
      [&out](const std::string& name, const obs::Labels&,
             const obs::LogHistogram& h) {
        if (h.count() == 0) return;
        for (auto& [existing, merged] : out.latency_histograms) {
          if (existing == name) {
            merged.merge(h);
            return;
          }
        }
        out.latency_histograms.emplace_back(name, h);
      });
  return out;
}

}  // namespace

std::vector<RunOutcome> run_sweep(const SweepArtifacts& artifacts,
                                  const std::vector<RunSpec>& specs,
                                  std::size_t jobs) {
  if (jobs == 0) {
    jobs = std::max(1u, std::thread::hardware_concurrency());
  }
  std::vector<RunOutcome> outcomes(specs.size());
  parallel_for(jobs, specs.size(), [&artifacts, &specs, &outcomes](std::size_t i) {
    outcomes[i] = run_one(artifacts, specs[i]);
  });
  return outcomes;
}

}  // namespace bass::exec
