// Parallel deterministic scenario-sweep engine (DESIGN.md §9): fans N
// independent scenario runs (chaos seeds, parameter grids) across hardware
// threads.
//
//  * Per-run isolation — every run owns its Scenario (simulation, Rng
//    streams, obs::Recorder); the worker installs the run's recorder as the
//    thread's global profiling recorder for the duration of the run.
//  * Shared immutable artifacts — the scenario ini, trace CSVs, seeded
//    generated traces, and the validated app graph are parsed once into
//    SweepArtifacts and shared read-only via shared_ptr.
//  * Deterministic aggregation — outcomes land in a vector indexed by run
//    id, so reports/journals are byte-identical to the serial order no
//    matter how completions interleave (`--jobs 1` vs `--jobs 8` parity is
//    locked by tests/exec_test.cpp).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "scenario/scenario.h"
#include "util/expected.h"
#include "util/ini.h"

namespace bass::exec {

// One `key = value` override applied to the first section of `kind` before
// a run; the section is appended when the scenario does not have one.
struct IniOverride {
  std::string kind;
  std::string key;
  std::string value;
};

void apply_overrides(util::IniFile& ini, const std::vector<IniOverride>& overrides);

// One run of a sweep: a label for reporting plus the ini deltas that make
// this run different from the base scenario (a chaos seed, a grid cell).
struct RunSpec {
  std::string label;
  std::vector<IniOverride> overrides;
};

// The parse-once inputs every run shares read-only.
struct SweepArtifacts {
  std::shared_ptr<const util::IniFile> ini;
  std::shared_ptr<const scenario::ScenarioAssets> assets;

  static util::Expected<SweepArtifacts> load(const std::string& path);
  static util::Expected<SweepArtifacts> from_ini(util::IniFile ini);
};

// Everything a harness reports about one run, captured while the run's
// world is still alive (the Scenario itself is torn down inside the sweep).
struct RunOutcome {
  std::string label;
  // Non-empty when the scenario failed to build; all other fields are
  // default-initialized in that case.
  std::string error;
  scenario::RunReport report;
  std::string journal;       // full event journal, JSONL
  std::string fault_events;  // fault_injected subset, JSONL
  std::string metrics_json;  // full metrics snapshot (counters/gauges/histos)
  // Log-scale latency histograms by metric name, copied out so a harness
  // can merge them across runs (obs::LogHistogram::merge) and report
  // sweep-wide percentiles. Labels are folded away — same-name histograms
  // from different runs are the same population.
  std::vector<std::pair<std::string, obs::LogHistogram>> latency_histograms;
  std::vector<double> recovery_s;  // failover outage lengths, seconds
  int components_down = 0;         // components still down at run end
};

// Runs every spec against the shared artifacts on `jobs` worker threads
// (0 = hardware_concurrency, 1 = inline serial baseline). Outcomes are
// indexed by spec position.
std::vector<RunOutcome> run_sweep(const SweepArtifacts& artifacts,
                                  const std::vector<RunSpec>& specs,
                                  std::size_t jobs);

}  // namespace bass::exec
