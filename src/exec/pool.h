// Fixed-size thread pool for fanning independent scenario runs across
// hardware threads (DESIGN.md §9). Deliberately work-stealing-free: sweep
// tasks are whole scenario runs — milliseconds to seconds each — so a
// single mutex-guarded FIFO is nowhere near contention and keeps the
// implementation small enough to reason about under ThreadSanitizer.
//
// Contract: every submitted task runs exactly once, even when the pool is
// destroyed with work still queued (the destructor drains before joining).
// A task that throws does not kill its worker; the exception is captured
// and the one with the lowest submission id is rethrown from wait(), so
// error propagation is deterministic regardless of completion interleaving.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace bass::exec {

class Pool {
 public:
  // Spawns `threads` workers (clamped to >= 1).
  explicit Pool(std::size_t threads);
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;
  // Drains the queue (every submitted task still runs), then joins. Task
  // exceptions not collected by a wait() are discarded here — call wait()
  // first if you care.
  ~Pool();

  std::size_t thread_count() const { return workers_.size(); }

  void submit(std::function<void()> task);

  // Blocks until every submitted task has finished, then rethrows the
  // pending exception with the lowest submission id (clearing the rest).
  // The pool stays usable after wait(), including after a rethrow.
  void wait();

 private:
  struct Task {
    std::uint64_t id;
    std::function<void()> fn;
  };

  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_work_;  // workers: queue non-empty or stopping
  std::condition_variable cv_idle_;  // wait(): queue empty and nothing running
  std::deque<Task> queue_;
  std::vector<std::pair<std::uint64_t, std::exception_ptr>> errors_;
  std::uint64_t next_id_ = 0;
  std::size_t running_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

// Runs fn(i) for every i in [0, count) on up to `threads` workers
// (threads <= 1 runs inline on the calling thread, spawning nothing).
// Every index runs even when others throw; the exception from the lowest
// throwing index is rethrown — identical semantics at any thread count.
void parallel_for(std::size_t threads, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace bass::exec
