#include "trace/citylab.h"

namespace bass::trace {

CityLabMesh citylab_mesh() {
  CityLabMesh mesh;
  const net::NodeId n0 = mesh.topology.add_node("ctrl");
  const net::NodeId n1 = mesh.topology.add_node("node1");
  const net::NodeId n2 = mesh.topology.add_node("node2");
  const net::NodeId n3 = mesh.topology.add_node("node3");
  const net::NodeId n4 = mesh.topology.add_node("node4");
  mesh.workers = {n1, n2, n3, n4};

  // Link classes: the control-plane uplink is stable and fat; worker-worker
  // links span the Fig. 2 stable/variable classes; node3-node4 is the
  // 25 Mbps link from the Fig. 8 walkthrough.
  mesh.links = {
      {n0, n1, net::mbps(40), 0.08, 0.0, 0.5},
      {n0, n3, net::mbps(30), 0.08, 0.0, 0.5},
      {n1, n2, net::kbps(19900), 0.10, 0.0012, 0.5},  // Fig. 2 stable class
      {n1, n3, net::mbps(12), 0.18, 0.0012, 0.5},
      {n2, n3, net::kbps(7620), 0.27, 0.002, 0.25},  // Fig. 2 variable class
      {n2, n4, net::mbps(12), 0.20, 0.002, 0.25},
      {n3, n4, net::mbps(25), 0.12, 0.0012, 0.5},
  };
  for (const auto& l : mesh.links) {
    mesh.topology.add_link(l.a, l.b, l.mean_bps);
  }
  return mesh;
}

void bind_citylab_traces(const CityLabMesh& mesh, TracePlayer& player,
                         sim::Duration duration, bool fades, std::uint64_t seed) {
  std::uint64_t link_seed = seed;
  for (const auto& l : mesh.links) {
    GeneratorParams params;
    params.mean_bps = l.mean_bps;
    params.stddev_frac = l.stddev_frac;
    params.duration = duration;
    params.fade_probability = fades ? l.fade_probability : 0.0;
    params.fade_depth_frac = l.fade_depth;
    // Fluctuations that warrant migration "happen in the order of minutes"
    // (§6.3.4) — fades last a couple of minutes.
    params.fade_duration = sim::seconds(150);
    util::Rng rng(link_seed++);
    player.add_bidirectional(l.a, l.b, generate_trace(params, rng));
  }
}

GeneratorParams fig2_stable_link() {
  GeneratorParams p;
  p.mean_bps = net::kbps(19900);  // 19.9 Mbps
  p.stddev_frac = 0.10;
  p.duration = sim::minutes(35);
  return p;
}

GeneratorParams fig2_variable_link() {
  GeneratorParams p;
  p.mean_bps = net::kbps(7620);  // 7.62 Mbps
  p.stddev_frac = 0.27;
  p.duration = sim::minutes(35);
  return p;
}

}  // namespace bass::trace
