// The CityLab emulation preset used by the §6.3 experiments: the 5-node
// subset of the Antwerp testbed (Fig. 15a) and per-link bandwidth traces.
//
// The paper's figure gives the topology and half-hour average bandwidths;
// exact per-link values are not published in the text, so we encode a
// plausible instance anchored on the values the paper does state:
//   * the node3–node4 link averages 25 Mbps (Fig. 8 experiment),
//   * one link class behaves like Fig. 2's stable link (≈19.9 Mbps, σ 10 %),
//   * another like Fig. 2's variable link (≈7.62 Mbps, σ 27 %).
// Node 0 hosts the control plane (robust, well-connected); nodes 1–4 are
// workers. All links are bidirectional with symmetric traces.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.h"
#include "trace/generator.h"
#include "trace/player.h"

namespace bass::trace {

struct CityLabLink {
  net::NodeId a;
  net::NodeId b;
  net::Bps mean_bps;
  double stddev_frac;
  double fade_probability;
  // Depth of interference fades as a fraction of the mean: strong backbone
  // links degrade to ~half capacity, marginal links collapse to a quarter.
  double fade_depth;
};

struct CityLabMesh {
  net::Topology topology;
  std::vector<CityLabLink> links;
  // Worker nodes (node 0 is the control plane / client entry point).
  std::vector<net::NodeId> workers;
};

// Builds the 5-node topology with link capacities set to the trace means.
CityLabMesh citylab_mesh();

// Generates one trace per link (both directions share it) and binds them to
// `player`. `duration` bounds the trace; `fades` enables the deep-fade
// events that drive the migration experiments (§6.3.2).
void bind_citylab_traces(const CityLabMesh& mesh, TracePlayer& player,
                         sim::Duration duration, bool fades, std::uint64_t seed);

// The two standalone Fig. 2 links: {stable, variable} generator parameters.
GeneratorParams fig2_stable_link();
GeneratorParams fig2_variable_link();

}  // namespace bass::trace
