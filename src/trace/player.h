// Replays bandwidth traces onto network links — the emulation layer the
// paper builds with tc on CloudLab (§6.3). One player drives any number of
// links; updates that share a timestamp are applied as a single batch so the
// allocator runs once per tick.
#pragma once

#include <vector>

#include "net/network.h"
#include "trace/trace.h"

namespace bass::trace {

class TracePlayer {
 public:
  explicit TracePlayer(net::Network& network) : network_(&network) {}

  // Binds a trace to one directed link.
  void add(net::LinkId link, BandwidthTrace trace);
  // Binds the same trace to both directions of the (a, b) link, matching the
  // paper's "links are bidirectional with similar bandwidth in both
  // directions" (Fig. 15a).
  void add_bidirectional(net::NodeId a, net::NodeId b, BandwidthTrace trace);

  // Schedules all capacity updates. If `loop` is true the traces repeat
  // forever (use Simulation::run_until to bound the run).
  void start(bool loop = false);

  sim::Time max_duration() const;

 private:
  struct Binding {
    net::LinkId link;
    BandwidthTrace trace;
    std::size_t next_index = 0;
  };

  void schedule_tick(sim::Time at);
  void apply_due(sim::Time at);

  net::Network* network_;
  std::vector<Binding> bindings_;
  bool loop_ = false;
  sim::Time cycle_offset_ = 0;
  bool started_ = false;
};

}  // namespace bass::trace
