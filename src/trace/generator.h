// Synthetic CityLab-like bandwidth traces.
//
// The paper replays traces from CityLab, an outdoor 802.11n testbed in
// Antwerp. Those traces are not public, so we substitute a mean-reverting
// stochastic process (discretized Ornstein–Uhlenbeck) matched to the
// published statistics (Fig. 2: one link with mean 19.9 Mbps and σ ≈ 10 % of
// the mean, another with mean 7.62 Mbps and σ ≈ 27 %), plus occasional deep
// fades ("a truck drives by") that the paper's Fig. 8/15 experiments rely on
// to trigger migration. Everything is seeded and deterministic.
#pragma once

#include "net/types.h"
#include "sim/time.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace bass::trace {

struct GeneratorParams {
  net::Bps mean_bps = net::mbps(20);
  double stddev_frac = 0.10;        // σ as a fraction of the mean
  double reversion = 0.10;          // pull toward the mean per step, in (0,1]
  sim::Duration step = sim::seconds(1);
  sim::Duration duration = sim::minutes(20);

  // Deep fades: with probability `fade_probability` per step a fade starts,
  // dropping capacity to `fade_depth_frac` of the mean for `fade_duration`.
  double fade_probability = 0.0;
  double fade_depth_frac = 0.3;
  sim::Duration fade_duration = sim::seconds(60);

  net::Bps floor_bps = net::kbps(100);  // capacity never drops below this
};

// Generates one trace; `rng` supplies all randomness.
BandwidthTrace generate_trace(const GeneratorParams& params, util::Rng& rng);

}  // namespace bass::trace
