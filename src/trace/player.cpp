#include "trace/player.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace bass::trace {

void TracePlayer::add(net::LinkId link, BandwidthTrace trace) {
  assert(!started_ && "add links before start()");
  if (trace.empty()) return;
  bindings_.push_back({link, std::move(trace), 0});
}

void TracePlayer::add_bidirectional(net::NodeId a, net::NodeId b, BandwidthTrace trace) {
  const auto ab = network_->topology().link_between(a, b);
  const auto ba = network_->topology().link_between(b, a);
  assert(ab && ba && "no such link");
  add(*ab, trace);
  add(*ba, std::move(trace));
}

sim::Time TracePlayer::max_duration() const {
  sim::Time d = 0;
  for (const auto& b : bindings_) d = std::max(d, b.trace.duration());
  return d;
}

void TracePlayer::start(bool loop) {
  assert(!started_);
  started_ = true;
  loop_ = loop;
  if (bindings_.empty()) return;
  apply_due(network_->simulation().now());
}

void TracePlayer::apply_due(sim::Time at) {
  const sim::Time local = at - cycle_offset_;
  {
    net::Network::BatchUpdate batch(*network_);
    for (auto& b : bindings_) {
      const auto& pts = b.trace.points();
      while (b.next_index < pts.size() && pts[b.next_index].at <= local) {
        network_->set_link_capacity(b.link, pts[b.next_index].bps);
        ++b.next_index;
      }
    }
  }

  // Next pending timestamp across all bindings.
  sim::Time next_local = std::numeric_limits<sim::Time>::max();
  for (const auto& b : bindings_) {
    if (b.next_index < b.trace.points().size()) {
      next_local = std::min(next_local, b.trace.points()[b.next_index].at);
    }
  }
  if (next_local == std::numeric_limits<sim::Time>::max()) {
    if (!loop_) return;
    // Restart all traces one step after the longest one ends.
    cycle_offset_ = at + sim::seconds(1);
    for (auto& b : bindings_) b.next_index = 0;
    schedule_tick(cycle_offset_);
    return;
  }
  schedule_tick(cycle_offset_ + next_local);
}

void TracePlayer::schedule_tick(sim::Time at) {
  network_->simulation().schedule_at(at, [this, at] { apply_due(at); });
}

}  // namespace bass::trace
