// A bandwidth trace: the capacity of one link as a step function of time.
// Traces come from the synthetic CityLab-like generator or from CSV files
// (so real testbed traces can be dropped in).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/types.h"
#include "sim/time.h"

namespace bass::trace {

struct TracePoint {
  sim::Time at;
  net::Bps bps;
};

class BandwidthTrace {
 public:
  BandwidthTrace() = default;
  explicit BandwidthTrace(std::vector<TracePoint> points);

  // Appends a point; timestamps must be non-decreasing.
  void append(sim::Time at, net::Bps bps);

  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }
  const std::vector<TracePoint>& points() const { return points_; }
  sim::Time duration() const { return points_.empty() ? 0 : points_.back().at; }

  // Step-function value at time t (last point at or before t); the first
  // point's value before the trace starts; 0 for an empty trace.
  net::Bps value_at(sim::Time t) const;

  // Summary statistics over point values (Mbps-level reporting).
  double mean_bps() const;
  double stddev_bps() const;
  net::Bps min_bps() const;
  net::Bps max_bps() const;

  // CSV round-trip: columns "t_seconds,bps".
  bool save_csv(const std::string& path) const;
  static std::optional<BandwidthTrace> load_csv(const std::string& path);

 private:
  std::vector<TracePoint> points_;
};

}  // namespace bass::trace
