#include "trace/trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/csv.h"
#include "util/stats.h"
#include "util/strings.h"

namespace bass::trace {

BandwidthTrace::BandwidthTrace(std::vector<TracePoint> points)
    : points_(std::move(points)) {
  assert(std::is_sorted(points_.begin(), points_.end(),
                        [](const TracePoint& a, const TracePoint& b) { return a.at < b.at; }));
}

void BandwidthTrace::append(sim::Time at, net::Bps bps) {
  assert(points_.empty() || at >= points_.back().at);
  points_.push_back({at, bps});
}

net::Bps BandwidthTrace::value_at(sim::Time t) const {
  if (points_.empty()) return 0;
  // First point with .at > t, then step back one.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](sim::Time value, const TracePoint& p) { return value < p.at; });
  if (it == points_.begin()) return points_.front().bps;
  return std::prev(it)->bps;
}

double BandwidthTrace::mean_bps() const {
  std::vector<double> v;
  v.reserve(points_.size());
  for (const auto& p : points_) v.push_back(static_cast<double>(p.bps));
  return util::mean(v);
}

double BandwidthTrace::stddev_bps() const {
  std::vector<double> v;
  v.reserve(points_.size());
  for (const auto& p : points_) v.push_back(static_cast<double>(p.bps));
  return util::stddev(v);
}

net::Bps BandwidthTrace::min_bps() const {
  net::Bps m = points_.empty() ? 0 : points_.front().bps;
  for (const auto& p : points_) m = std::min(m, p.bps);
  return m;
}

net::Bps BandwidthTrace::max_bps() const {
  net::Bps m = 0;
  for (const auto& p : points_) m = std::max(m, p.bps);
  return m;
}

bool BandwidthTrace::save_csv(const std::string& path) const {
  util::CsvWriter w(path, {"t_seconds", "bps"});
  if (!w.ok()) return false;
  for (const auto& p : points_) {
    w.row({util::str_format("%.3f", sim::to_seconds(p.at)),
           util::str_format("%lld", static_cast<long long>(p.bps))});
  }
  return true;
}

std::optional<BandwidthTrace> BandwidthTrace::load_csv(const std::string& path) {
  auto table = util::read_csv(path);
  if (!table || table->header.size() < 2) return std::nullopt;
  BandwidthTrace out;
  for (const auto& row : table->rows) {
    if (row.size() < 2) return std::nullopt;
    const double t = std::strtod(row[0].c_str(), nullptr);
    const long long bps = std::strtoll(row[1].c_str(), nullptr, 10);
    out.append(sim::seconds_f(t), static_cast<net::Bps>(bps));
  }
  return out;
}

}  // namespace bass::trace
