#include "trace/generator.h"

#include <algorithm>
#include <cmath>

namespace bass::trace {

BandwidthTrace generate_trace(const GeneratorParams& params, util::Rng& rng) {
  BandwidthTrace out;
  const double mean = static_cast<double>(params.mean_bps);
  const double sigma = mean * params.stddev_frac;
  // Step the OU process so the stationary stddev matches sigma:
  // x' = x + k(mean - x) + N(0, sigma * sqrt(2k - k^2)).
  const double k = std::clamp(params.reversion, 1e-3, 1.0);
  const double step_sigma = sigma * std::sqrt(std::max(2.0 * k - k * k, 0.0));

  double x = mean;
  sim::Time fade_until = -1;
  for (sim::Time t = 0; t <= params.duration; t += params.step) {
    x += k * (mean - x) + rng.normal(0.0, step_sigma);
    double value = x;
    if (t < fade_until) {
      value = std::min(value, mean * params.fade_depth_frac);
    } else if (params.fade_probability > 0.0 && rng.chance(params.fade_probability)) {
      fade_until = t + params.fade_duration;
      value = std::min(value, mean * params.fade_depth_frac);
    }
    value = std::max(value, static_cast<double>(params.floor_bps));
    out.append(t, static_cast<net::Bps>(value));
  }
  return out;
}

}  // namespace bass::trace
