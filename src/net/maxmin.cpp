#include "net/maxmin.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <limits>
#include <utility>

#include "obs/recorder.h"

namespace bass::net {

void MaxMinSolver::ensure_links(std::size_t nl) {
  if (link_stamp_.size() >= nl) return;
  link_stamp_.resize(nl, 0);
  remaining_.resize(nl, 0.0);
  unfrozen_on_link_.resize(nl, 0);
  flows_on_link_.resize(nl);
}

const std::vector<double>& MaxMinSolver::solve(
    const std::vector<double>& capacities,
    const std::vector<AllocEntityRef>& entities) {
  BASS_OBS_SCOPE("net.maxmin.solve_us");
  const std::size_t nf = entities.size();
  rates_.assign(nf, 0.0);
  frozen_.assign(nf, 0);
  ensure_links(capacities.size());
  ++stamp_;
  if (stamp_ == 0) {  // wrapped: invalidate every stale stamp
    std::fill(link_stamp_.begin(), link_stamp_.end(), 0u);
    stamp_ = 1;
  }
  active_links_.clear();
  demand_order_.clear();
  last_rounds_ = 0;

  std::size_t unfrozen_count = 0;
  for (std::size_t f = 0; f < nf; ++f) {
    const AllocEntityRef& e = entities[f];
    if (e.demand <= 0.0) {
      frozen_[f] = 1;
      continue;
    }
    assert(e.links != nullptr && !e.links->empty() &&
           "demanding entity must traverse links");
    ++unfrozen_count;
    if (e.demand < static_cast<double>(kUnlimitedRate)) {
      demand_order_.push_back(static_cast<int>(f));
    }
    for (LinkId l : *e.links) {
      const auto li = static_cast<std::size_t>(l);
      assert(l >= 0 && li < capacities.size());
      if (link_stamp_[li] != stamp_) {
        link_stamp_[li] = stamp_;
        remaining_[li] = capacities[li];
        unfrozen_on_link_[li] = 0;
        flows_on_link_[li].clear();
        active_links_.push_back(l);
      }
      ++unfrozen_on_link_[li];
      flows_on_link_[li].push_back(static_cast<int>(f));
    }
  }

  // Ascending demand frontier: the next flow to demand-freeze is always at
  // `next_demand`, so a round never scans the whole flow set for the
  // smallest remaining demand. Ties broken by index for determinism.
  std::sort(demand_order_.begin(), demand_order_.end(), [&](int a, int b) {
    const double da = entities[static_cast<std::size_t>(a)].demand;
    const double db = entities[static_cast<std::size_t>(b)].demand;
    return da != db ? da < db : a < b;
  });
  std::size_t next_demand = 0;

  // Event-driven filling: instead of raising a water level in increments
  // and rescanning links, process "events" — the level at which a link
  // saturates, L_sat(l) = remaining_l / unfrozen_l, or a demand is met —
  // in ascending order from a min-heap. Freezing a flow at level L only
  // raises L_sat of the links it crossed (remaining drops by L ≤ L_sat,
  // unfrozen drops by 1), so heap entries are lower bounds and can be
  // revalidated lazily on pop: each round costs O(log) plus the freezes it
  // performs, never a scan of the active link set.
  const auto heap_greater = std::greater<std::pair<double, LinkId>>();
  heap_.clear();
  heap_.reserve(active_links_.size());
  for (LinkId l : active_links_) {
    const auto li = static_cast<std::size_t>(l);
    heap_.emplace_back(remaining_[li] / unfrozen_on_link_[li], l);
  }
  std::make_heap(heap_.begin(), heap_.end(), heap_greater);

  // Every unfrozen flow has received exactly the common raises since round
  // 0, so the water level IS its running allocation; freezing records the
  // level (or the demand) instead of accumulating per-flow.
  double level = 0.0;

  auto freeze = [&](int f, double rate) {
    frozen_[static_cast<std::size_t>(f)] = 1;
    rates_[static_cast<std::size_t>(f)] = rate;
    --unfrozen_count;
    for (LinkId l : *entities[static_cast<std::size_t>(f)].links) {
      const auto li = static_cast<std::size_t>(l);
      remaining_[li] -= rate;
      --unfrozen_on_link_[li];
    }
  };

  // Each round freezes at least one flow; the guard is float head room.
  std::size_t guard = nf + 2;
  while (unfrozen_count > 0 && guard-- > 0) {
    ++last_rounds_;
    // Next link-saturation event, revalidating stale heap entries.
    double link_level = std::numeric_limits<double>::infinity();
    std::size_t link_idx = 0;  // valid only when link_level is finite
    while (!heap_.empty()) {
      const auto [stored, l] = heap_.front();
      const auto li = static_cast<std::size_t>(l);
      if (unfrozen_on_link_[li] <= 0) {  // fully frozen: retire the link
        std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
        heap_.pop_back();
        continue;
      }
      const double cur = remaining_[li] / unfrozen_on_link_[li];
      if (cur > stored + kAllocEps) {  // stale lower bound: re-key
        std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
        heap_.back().first = cur;
        std::push_heap(heap_.begin(), heap_.end(), heap_greater);
        continue;
      }
      link_level = std::max(cur, level);  // float noise may lag the level
      link_idx = li;
      break;
    }
    // Next demand event.
    while (next_demand < demand_order_.size() &&
           frozen_[static_cast<std::size_t>(demand_order_[next_demand])]) {
      ++next_demand;
    }
    const double demand_level =
        next_demand < demand_order_.size()
            ? entities[static_cast<std::size_t>(demand_order_[next_demand])].demand
            : std::numeric_limits<double>::infinity();
    if (!std::isfinite(std::min(link_level, demand_level))) break;

    if (demand_level <= link_level + kAllocEps) {
      level = std::max(level, demand_level);
      const int f = demand_order_[next_demand++];
      freeze(f, entities[static_cast<std::size_t>(f)].demand);
    } else {
      level = std::max(level, link_level);
      std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
      heap_.pop_back();
      for (int f : flows_on_link_[link_idx]) {
        if (!frozen_[static_cast<std::size_t>(f)]) freeze(f, level);
      }
    }
  }

  // Guard exhaustion (pathological float behaviour): pin leftovers at the
  // final level, mirroring the reference kernel's running allocations.
  for (std::size_t f = 0; f < nf; ++f) {
    if (!frozen_[f]) rates_[f] = std::min(entities[f].demand, level);
    if (rates_[f] < 0.0) rates_[f] = 0.0;
  }
  return rates_;
}

std::vector<double> max_min_allocate(const std::vector<double>& capacities,
                                     const std::vector<AllocEntity>& entities) {
  thread_local MaxMinSolver solver;
  std::vector<AllocEntityRef> refs;
  refs.reserve(entities.size());
  for (const AllocEntity& e : entities) refs.push_back({e.demand, &e.links});
  return solver.solve(capacities, refs);
}

std::vector<double> max_min_allocate_reference(
    const std::vector<double>& capacities,
    const std::vector<AllocEntity>& entities) {
  const std::size_t nf = entities.size();
  const std::size_t nl = capacities.size();
  std::vector<double> alloc(nf, 0.0);
  std::vector<bool> frozen(nf, false);

  std::vector<double> remaining = capacities;
  std::vector<int> unfrozen_on_link(nl, 0);
  std::vector<std::vector<int>> flows_on_link(nl);

  std::size_t unfrozen_count = 0;
  for (std::size_t f = 0; f < nf; ++f) {
    if (entities[f].demand <= 0.0) {
      frozen[f] = true;
      continue;
    }
    assert(!entities[f].links.empty() && "demanding entity must traverse links");
    ++unfrozen_count;
    for (LinkId l : entities[f].links) {
      assert(l >= 0 && static_cast<std::size_t>(l) < nl);
      ++unfrozen_on_link[l];
      flows_on_link[l].push_back(static_cast<int>(f));
    }
  }

  // Each iteration saturates a link or meets a demand, so the loop runs at
  // most nf + nl times; the +2 is head room for float edge cases.
  std::size_t guard = nf + nl + 2;
  while (unfrozen_count > 0 && guard-- > 0) {
    // Water level increment: smallest equal share that saturates a link or
    // meets a flow's demand.
    double delta = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < nl; ++l) {
      if (unfrozen_on_link[l] > 0) {
        delta = std::min(delta, remaining[l] / unfrozen_on_link[l]);
      }
    }
    for (std::size_t f = 0; f < nf; ++f) {
      if (!frozen[f]) delta = std::min(delta, entities[f].demand - alloc[f]);
    }
    if (!std::isfinite(delta)) break;
    delta = std::max(delta, 0.0);

    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f]) continue;
      alloc[f] += delta;
      for (LinkId l : entities[f].links) remaining[l] -= delta;
    }

    // Freeze flows whose demand is met.
    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f] || alloc[f] + kAllocEps < entities[f].demand) continue;
      frozen[f] = true;
      --unfrozen_count;
      for (LinkId l : entities[f].links) --unfrozen_on_link[l];
    }
    // Freeze flows crossing a saturated link.
    for (std::size_t l = 0; l < nl; ++l) {
      if (remaining[l] > kAllocEps || unfrozen_on_link[l] == 0) continue;
      for (int f : flows_on_link[l]) {
        if (frozen[f]) continue;
        frozen[f] = true;
        --unfrozen_count;
        for (LinkId fl : entities[f].links) --unfrozen_on_link[fl];
      }
    }
  }

  for (std::size_t f = 0; f < nf; ++f) {
    if (alloc[f] < 0.0) alloc[f] = 0.0;
  }
  return alloc;
}

namespace {

std::vector<double> proportional_impl(const std::vector<double>& capacities,
                                      const std::vector<AllocEntityRef>& entities) {
  const std::size_t nf = entities.size();
  const std::size_t nl = capacities.size();

  // Only "unlimited" backlogged flows are capped (to the largest single
  // capacity) so they weigh links sensibly; finite demands keep their true
  // magnitude, preserving demand ratios in the proportional split.
  double max_capacity = 0.0;
  for (double c : capacities) max_capacity = std::max(max_capacity, c);
  auto effective_demand = [&](const AllocEntityRef& e) {
    return e.demand >= static_cast<double>(kUnlimitedRate) ? max_capacity : e.demand;
  };

  std::vector<double> offered(nl, 0.0);
  for (const AllocEntityRef& e : entities) {
    if (e.demand <= 0.0 || e.links == nullptr) continue;
    for (LinkId l : *e.links) offered[static_cast<std::size_t>(l)] += effective_demand(e);
  }

  std::vector<double> alloc(nf, 0.0);
  for (std::size_t f = 0; f < nf; ++f) {
    const AllocEntityRef& e = entities[f];
    if (e.demand <= 0.0 || e.links == nullptr) continue;
    double scale = 1.0;
    for (LinkId l : *e.links) {
      const std::size_t li = static_cast<std::size_t>(l);
      if (offered[li] > capacities[li]) {
        scale = std::min(scale, offered[li] <= 0.0 ? 0.0 : capacities[li] / offered[li]);
      }
    }
    alloc[f] = effective_demand(e) * std::max(scale, 0.0);
  }
  return alloc;
}

}  // namespace

std::vector<double> proportional_allocate(const std::vector<double>& capacities,
                                          const std::vector<AllocEntity>& entities) {
  std::vector<AllocEntityRef> refs;
  refs.reserve(entities.size());
  for (const AllocEntity& e : entities) refs.push_back({e.demand, &e.links});
  return proportional_impl(capacities, refs);
}

std::vector<double> proportional_allocate_refs(
    const std::vector<double>& capacities,
    const std::vector<AllocEntityRef>& entities) {
  return proportional_impl(capacities, entities);
}

}  // namespace bass::net
