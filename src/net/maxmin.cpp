#include "net/maxmin.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <limits>
#include <utility>

#include "obs/recorder.h"

namespace bass::net {

namespace {

// 4-ary min-heap primitives over (level, dense link) entries. Quarter the
// depth of a binary heap and sift-down-in-place re-keying (levels only
// rise) make retire/re-key/pop single-sift operations. The index tiebreak
// makes the ordering total, so the pop sequence — and with it the solve —
// is independent of heap shape.
using HeapEntry = std::pair<double, std::uint32_t>;

inline void heap_sift_down(HeapEntry* h, std::size_t n, std::size_t i) {
  const HeapEntry v = h[i];
  for (;;) {
    const std::size_t c = 4 * i + 1;
    if (c >= n) break;
    std::size_t m = c;
    const std::size_t end = std::min(c + 4, n);
    for (std::size_t j = c + 1; j < end; ++j) {
      if (h[j] < h[m]) m = j;
    }
    if (!(h[m] < v)) break;
    h[i] = h[m];
    i = m;
  }
  h[i] = v;
}

inline void heap_build(HeapEntry* h, std::size_t n) {
  if (n < 2) return;
  for (std::size_t i = (n - 2) / 4 + 1; i-- > 0;) heap_sift_down(h, n, i);
}

inline void heap_pop(HeapEntry* h, std::size_t& n) {
  h[0] = h[--n];
  if (n > 1) heap_sift_down(h, n, 0);
}

}  // namespace

void MaxMinSolver::ensure_links(std::size_t nl) {
  if (link_stamp_.size() >= nl) return;
  link_stamp_.resize(nl, 0);
  link_dense_.resize(nl, 0);
}

const std::vector<double>& MaxMinSolver::solve(
    const std::vector<double>& capacities,
    const std::vector<AllocEntityRef>& entities) {
  BASS_OBS_SCOPE("net.maxmin.solve_us");
  const std::size_t nf = entities.size();
  rates_.assign(nf, 0.0);  // assign() reuses capacity: no alloc at steady state
  ensure_links(capacities.size());
  ++stamp_;
  if (stamp_ == 0) {  // wrapped: invalidate every stale stamp
    std::fill(link_stamp_.begin(), link_stamp_.end(), 0u);
    stamp_ = 1;
  }
  last_rounds_ = 0;

  // Pass 0: total path length T over demanding entities bounds every dense
  // array (≤ T distinct active links, exactly T CSR slots both ways), so
  // one arena reset up front covers the whole solve. The bound is padded
  // past the worst-case carve sum (nf·17 + T·60 + ~112 incl. alignment).
  std::size_t total_links = 0;
  for (const AllocEntityRef& e : entities) {
    if (e.demand > 0.0) total_links += e.links->size();
  }
  const std::size_t T = total_links;
  arena_.reset(nf * 32 + T * 72 + 128);
  demand_ = arena_.alloc<double>(nf);
  frozen_ = arena_.alloc<char>(nf);
  demand_events_ = arena_.alloc<HeapEntry>(nf);
  flow_off_ = arena_.alloc<std::uint32_t>(nf + 1);
  flow_dense_ = arena_.alloc<std::uint32_t>(T);
  active_links_ = arena_.alloc<LinkId>(T);
  remaining_ = arena_.alloc<double>(T);
  unfrozen_ = arena_.alloc<double>(T);
  share_ = arena_.alloc<double>(T);
  offered_ = arena_.alloc<double>(T);
  csr_off_ = arena_.alloc<std::uint32_t>(T + 1);
  csr_pos_ = arena_.alloc<std::uint32_t>(T);
  csr_flows_ = arena_.alloc<std::int32_t>(T);
  heap_ = arena_.alloc<HeapEntry>(T);

  // Pass 1: stamp links into dense slots (index = discovery order, so the
  // layout — and with it every tie-break — is deterministic), record each
  // flow's path as dense indices (flow CSR), and count flows per link.
  std::size_t num_active = 0;   // K: distinct active links
  std::size_t num_finite = 0;   // flows with a finite demand cap
  std::size_t unfrozen_count = 0;
  std::uint32_t cursor = 0;
  flow_off_[0] = 0;
  for (std::size_t f = 0; f < nf; ++f) {
    const AllocEntityRef& e = entities[f];
    if (e.demand <= 0.0) {
      frozen_[f] = 1;
      demand_[f] = 0.0;
      flow_off_[f + 1] = cursor;
      continue;
    }
    assert(e.links != nullptr && !e.links->empty() &&
           "demanding entity must traverse links");
    frozen_[f] = 0;
    demand_[f] = e.demand;
    ++unfrozen_count;
    if (e.demand < static_cast<double>(kUnlimitedRate)) {
      demand_events_[num_finite++] = {e.demand, static_cast<std::uint32_t>(f)};
    }
    for (LinkId l : *e.links) {
      const auto li = static_cast<std::size_t>(l);
      assert(l >= 0 && li < capacities.size());
      if (link_stamp_[li] != stamp_) {
        link_stamp_[li] = stamp_;
        link_dense_[li] = static_cast<std::uint32_t>(num_active);
        active_links_[num_active] = l;
        csr_pos_[num_active] = 0;
        offered_[num_active] = 0.0;
        ++num_active;
      }
      const std::uint32_t k = link_dense_[li];
      ++csr_pos_[k];
      offered_[k] += e.demand;
      flow_dense_[cursor++] = k;
    }
    flow_off_[f + 1] = cursor;
  }
  const std::size_t K = num_active;

  // Pass 2: prefix-sum the per-link counts into CSR offsets; csr_pos_
  // becomes the fill cursor. unfrozen_ doubles as the count (a double so
  // the fair-share scan divides without converting), remaining_ starts at
  // capacity.
  std::uint32_t run = 0;
  for (std::size_t k = 0; k < K; ++k) {
    csr_off_[k] = run;
    const std::uint32_t cnt = csr_pos_[k];
    run += cnt;
    csr_pos_[k] = csr_off_[k];
    remaining_[k] = capacities[static_cast<std::size_t>(active_links_[k])];
    unfrozen_[k] = static_cast<double>(cnt);
  }
  csr_off_[K] = run;

  // Pass 3: scatter flows into the link CSR through the cursors.
  for (std::size_t f = 0; f < nf; ++f) {
    for (std::uint32_t t = flow_off_[f]; t < flow_off_[f + 1]; ++t) {
      csr_flows_[csr_pos_[flow_dense_[t]]++] = static_cast<std::int32_t>(f);
    }
  }

  // Ascending demand frontier: the next flow to demand-freeze is always at
  // `next_demand`, so a round never scans the whole flow set for the
  // smallest remaining demand. Sorting (demand, flow) pairs keys the
  // comparison in-array (no indirection) and ties break by index for
  // determinism — pair ordering is exactly (demand asc, flow asc).
  std::sort(demand_events_, demand_events_ + num_finite);
  std::size_t next_demand = 0;

  // Event-driven filling: instead of raising a water level in increments
  // and rescanning links, process "events" — the level at which a link
  // saturates, L_sat(l) = remaining_l / unfrozen_l, or a demand is met —
  // in ascending order from a min-heap. Freezing a flow at level L only
  // raises L_sat of the links it crossed (remaining drops by L ≤ L_sat,
  // unfrozen drops by 1), so heap entries are lower bounds and can be
  // revalidated lazily on pop: each round costs O(log) plus the freezes it
  // performs, never a scan of the active link set. The initial saturation
  // scan is the vectorized fair-share kernel over the dense SoA.
  // Only links that can actually saturate enter the heap: a link whose
  // offered load (Σ demand of its flows, with kUnlimitedRate dwarfing any
  // capacity) fits inside its capacity never runs out of headroom — each of
  // its flows demand-freezes first, since the global demand frontier is
  // always at or below such a link's fair share. Skipping them (typically
  // most links in a demand-capped workload) shrinks the heap and eliminates
  // their retire pops; they still take freeze subtractions, which is
  // harmless bookkeeping.
  util::simd::fair_share(share_, remaining_, unfrozen_, K, use_simd_);
  std::size_t heap_size = 0;
  for (std::size_t k = 0; k < K; ++k) {
    if (offered_[k] > remaining_[k]) {
      heap_[heap_size++] = {share_[k], static_cast<std::uint32_t>(k)};
    }
  }
  heap_build(heap_, heap_size);

  // Every unfrozen flow has received exactly the common raises since round
  // 0, so the water level IS its running allocation; freezing records the
  // level (or the demand) instead of accumulating per-flow.
  double level = 0.0;

  auto freeze = [&](std::int32_t f, double rate) {
    const auto fi = static_cast<std::size_t>(f);
    frozen_[fi] = 1;
    rates_[fi] = rate;
    --unfrozen_count;
    util::simd::freeze_subtract(remaining_, unfrozen_,
                                flow_dense_ + flow_off_[fi],
                                flow_off_[fi + 1] - flow_off_[fi], rate);
  };

  // Each round freezes at least one flow; the guard is float head room.
  std::size_t guard = nf + 2;
  while (unfrozen_count > 0 && guard-- > 0) {
    ++last_rounds_;
    // Next demand event.
    while (next_demand < num_finite &&
           frozen_[demand_events_[next_demand].second]) {
      ++next_demand;
    }
    const double demand_level = next_demand < num_finite
                                    ? demand_events_[next_demand].first
                                    : std::numeric_limits<double>::infinity();

    // O(1) fast path. Heap keys are lower bounds and every live link keeps
    // an entry, so the (possibly stale) top already lower-bounds the true
    // minimum saturation level: a demand at or below it is necessarily the
    // next event, and the round costs one compare plus the freeze — no
    // revalidation. Most rounds of a finite-demand-heavy workload land
    // here.
    if (next_demand < num_finite &&
        (heap_size == 0 || demand_level <= heap_[0].first + kAllocEps)) {
      level = std::max(level, demand_level);
      const std::uint32_t f = demand_events_[next_demand++].second;
      freeze(static_cast<std::int32_t>(f), demand_[f]);
      continue;
    }

    // Slow path: find the next link-saturation event, revalidating stale
    // heap entries lazily.
    double link_level = std::numeric_limits<double>::infinity();
    std::size_t link_idx = 0;  // dense; valid only when link_level is finite
    while (heap_size > 0) {
      const auto [stored, k] = heap_[0];
      if (unfrozen_[k] <= 0.0) {  // fully frozen: retire the link
        heap_pop(heap_, heap_size);
        continue;
      }
      const double cur = remaining_[k] / unfrozen_[k];
      if (cur > stored + kAllocEps) {  // stale lower bound: re-key in place
        heap_[0].first = cur;
        heap_sift_down(heap_, heap_size, 0);
        continue;
      }
      link_level = std::max(cur, level);  // float noise may lag the level
      link_idx = k;
      break;
    }
    if (!std::isfinite(std::min(link_level, demand_level))) break;

    if (demand_level <= link_level + kAllocEps) {
      level = std::max(level, demand_level);
      const std::uint32_t f = demand_events_[next_demand++].second;
      freeze(static_cast<std::int32_t>(f), demand_[f]);
    } else {
      level = std::max(level, link_level);
      heap_pop(heap_, heap_size);
      for (std::uint32_t i = csr_off_[link_idx]; i < csr_off_[link_idx + 1]; ++i) {
        const std::int32_t f = csr_flows_[i];
        if (!frozen_[static_cast<std::size_t>(f)]) freeze(f, level);
      }
    }
  }

  // Guard exhaustion (pathological float behaviour): pin leftovers at the
  // final level, mirroring the reference kernel's running allocations.
  for (std::size_t f = 0; f < nf; ++f) {
    if (!frozen_[f]) rates_[f] = std::min(demand_[f], level);
  }
  util::simd::clamp_nonnegative(rates_.data(), nf, use_simd_);
  return rates_;
}

std::vector<double> max_min_allocate(const std::vector<double>& capacities,
                                     const std::vector<AllocEntity>& entities) {
  thread_local MaxMinSolver solver;
  std::vector<AllocEntityRef> refs;
  refs.reserve(entities.size());
  for (const AllocEntity& e : entities) refs.push_back({e.demand, &e.links});
  return solver.solve(capacities, refs);
}

std::vector<double> max_min_allocate_reference(
    const std::vector<double>& capacities,
    const std::vector<AllocEntity>& entities) {
  const std::size_t nf = entities.size();
  const std::size_t nl = capacities.size();
  std::vector<double> alloc(nf, 0.0);
  std::vector<bool> frozen(nf, false);

  std::vector<double> remaining = capacities;
  std::vector<int> unfrozen_on_link(nl, 0);
  std::vector<std::vector<int>> flows_on_link(nl);

  std::size_t unfrozen_count = 0;
  for (std::size_t f = 0; f < nf; ++f) {
    if (entities[f].demand <= 0.0) {
      frozen[f] = true;
      continue;
    }
    assert(!entities[f].links.empty() && "demanding entity must traverse links");
    ++unfrozen_count;
    for (LinkId l : entities[f].links) {
      assert(l >= 0 && static_cast<std::size_t>(l) < nl);
      ++unfrozen_on_link[l];
      flows_on_link[l].push_back(static_cast<int>(f));
    }
  }

  // Each iteration saturates a link or meets a demand, so the loop runs at
  // most nf + nl times; the +2 is head room for float edge cases.
  std::size_t guard = nf + nl + 2;
  while (unfrozen_count > 0 && guard-- > 0) {
    // Water level increment: smallest equal share that saturates a link or
    // meets a flow's demand.
    double delta = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < nl; ++l) {
      if (unfrozen_on_link[l] > 0) {
        delta = std::min(delta, remaining[l] / unfrozen_on_link[l]);
      }
    }
    for (std::size_t f = 0; f < nf; ++f) {
      if (!frozen[f]) delta = std::min(delta, entities[f].demand - alloc[f]);
    }
    if (!std::isfinite(delta)) break;
    delta = std::max(delta, 0.0);

    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f]) continue;
      alloc[f] += delta;
      for (LinkId l : entities[f].links) remaining[l] -= delta;
    }

    // Freeze flows whose demand is met.
    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f] || alloc[f] + kAllocEps < entities[f].demand) continue;
      frozen[f] = true;
      --unfrozen_count;
      for (LinkId l : entities[f].links) --unfrozen_on_link[l];
    }
    // Freeze flows crossing a saturated link.
    for (std::size_t l = 0; l < nl; ++l) {
      if (remaining[l] > kAllocEps || unfrozen_on_link[l] == 0) continue;
      for (int f : flows_on_link[l]) {
        if (frozen[f]) continue;
        frozen[f] = true;
        --unfrozen_count;
        for (LinkId fl : entities[f].links) --unfrozen_on_link[fl];
      }
    }
  }

  for (std::size_t f = 0; f < nf; ++f) {
    if (alloc[f] < 0.0) alloc[f] = 0.0;
  }
  return alloc;
}

namespace {

std::vector<double> proportional_impl(const std::vector<double>& capacities,
                                      const std::vector<AllocEntityRef>& entities) {
  const std::size_t nf = entities.size();
  const std::size_t nl = capacities.size();

  // Only "unlimited" backlogged flows are capped (to the largest single
  // capacity) so they weigh links sensibly; finite demands keep their true
  // magnitude, preserving demand ratios in the proportional split.
  double max_capacity = 0.0;
  for (double c : capacities) max_capacity = std::max(max_capacity, c);
  auto effective_demand = [&](const AllocEntityRef& e) {
    return e.demand >= static_cast<double>(kUnlimitedRate) ? max_capacity : e.demand;
  };

  std::vector<double> offered(nl, 0.0);
  for (const AllocEntityRef& e : entities) {
    if (e.demand <= 0.0 || e.links == nullptr) continue;
    for (LinkId l : *e.links) offered[static_cast<std::size_t>(l)] += effective_demand(e);
  }

  std::vector<double> alloc(nf, 0.0);
  for (std::size_t f = 0; f < nf; ++f) {
    const AllocEntityRef& e = entities[f];
    if (e.demand <= 0.0 || e.links == nullptr) continue;
    double scale = 1.0;
    for (LinkId l : *e.links) {
      const std::size_t li = static_cast<std::size_t>(l);
      if (offered[li] > capacities[li]) {
        scale = std::min(scale, offered[li] <= 0.0 ? 0.0 : capacities[li] / offered[li]);
      }
    }
    alloc[f] = effective_demand(e) * std::max(scale, 0.0);
  }
  return alloc;
}

}  // namespace

std::vector<double> proportional_allocate(const std::vector<double>& capacities,
                                          const std::vector<AllocEntity>& entities) {
  std::vector<AllocEntityRef> refs;
  refs.reserve(entities.size());
  for (const AllocEntity& e : entities) refs.push_back({e.demand, &e.links});
  return proportional_impl(capacities, refs);
}

std::vector<double> proportional_allocate_refs(
    const std::vector<double>& capacities,
    const std::vector<AllocEntityRef>& entities) {
  return proportional_impl(capacities, entities);
}

}  // namespace bass::net
