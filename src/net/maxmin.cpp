#include "net/maxmin.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace bass::net {

std::vector<double> max_min_allocate(const std::vector<double>& capacities,
                                     const std::vector<AllocEntity>& entities) {
  const std::size_t nf = entities.size();
  const std::size_t nl = capacities.size();
  std::vector<double> alloc(nf, 0.0);
  std::vector<bool> frozen(nf, false);

  std::vector<double> remaining = capacities;
  std::vector<int> unfrozen_on_link(nl, 0);
  std::vector<std::vector<int>> flows_on_link(nl);

  std::size_t unfrozen_count = 0;
  for (std::size_t f = 0; f < nf; ++f) {
    if (entities[f].demand <= 0.0) {
      frozen[f] = true;
      continue;
    }
    assert(!entities[f].links.empty() && "demanding entity must traverse links");
    ++unfrozen_count;
    for (LinkId l : entities[f].links) {
      assert(l >= 0 && static_cast<std::size_t>(l) < nl);
      ++unfrozen_on_link[l];
      flows_on_link[l].push_back(static_cast<int>(f));
    }
  }

  // Absolute slack below which a link counts as saturated / a demand as met.
  constexpr double kEps = 1e-3;  // 0.001 bps

  // Each iteration saturates a link or meets a demand, so the loop runs at
  // most nf + nl times; the +2 is head room for float edge cases.
  std::size_t guard = nf + nl + 2;
  while (unfrozen_count > 0 && guard-- > 0) {
    // Water level increment: smallest equal share that saturates a link or
    // meets a flow's demand.
    double delta = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < nl; ++l) {
      if (unfrozen_on_link[l] > 0) {
        delta = std::min(delta, remaining[l] / unfrozen_on_link[l]);
      }
    }
    for (std::size_t f = 0; f < nf; ++f) {
      if (!frozen[f]) delta = std::min(delta, entities[f].demand - alloc[f]);
    }
    if (!std::isfinite(delta)) break;
    delta = std::max(delta, 0.0);

    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f]) continue;
      alloc[f] += delta;
      for (LinkId l : entities[f].links) remaining[l] -= delta;
    }

    // Freeze flows whose demand is met.
    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f] || alloc[f] + kEps < entities[f].demand) continue;
      frozen[f] = true;
      --unfrozen_count;
      for (LinkId l : entities[f].links) --unfrozen_on_link[l];
    }
    // Freeze flows crossing a saturated link.
    for (std::size_t l = 0; l < nl; ++l) {
      if (remaining[l] > kEps || unfrozen_on_link[l] == 0) continue;
      for (int f : flows_on_link[l]) {
        if (frozen[f]) continue;
        frozen[f] = true;
        --unfrozen_count;
        for (LinkId fl : entities[f].links) --unfrozen_on_link[fl];
      }
    }
  }

  for (std::size_t f = 0; f < nf; ++f) {
    if (alloc[f] < 0.0) alloc[f] = 0.0;
  }
  return alloc;
}

std::vector<double> proportional_allocate(const std::vector<double>& capacities,
                                          const std::vector<AllocEntity>& entities) {
  const std::size_t nf = entities.size();
  const std::size_t nl = capacities.size();

  // Only "unlimited" backlogged flows are capped (to the largest single
  // capacity) so they weigh links sensibly; finite demands keep their true
  // magnitude, preserving demand ratios in the proportional split.
  double max_capacity = 0.0;
  for (double c : capacities) max_capacity = std::max(max_capacity, c);
  auto effective_demand = [&](const AllocEntity& e) {
    return e.demand >= static_cast<double>(kUnlimitedRate) ? max_capacity : e.demand;
  };

  std::vector<double> offered(nl, 0.0);
  for (const AllocEntity& e : entities) {
    for (LinkId l : e.links) offered[static_cast<std::size_t>(l)] += effective_demand(e);
  }

  std::vector<double> alloc(nf, 0.0);
  for (std::size_t f = 0; f < nf; ++f) {
    const AllocEntity& e = entities[f];
    if (e.demand <= 0.0) continue;
    double scale = 1.0;
    for (LinkId l : e.links) {
      const std::size_t li = static_cast<std::size_t>(l);
      if (offered[li] > capacities[li]) {
        scale = std::min(scale, offered[li] <= 0.0 ? 0.0 : capacities[li] / offered[li]);
      }
    }
    alloc[f] = effective_demand(e) * std::max(scale, 0.0);
  }
  return alloc;
}

}  // namespace bass::net
