#include "net/routing.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace bass::net {

void RoutingTable::recompute() {
  const int n = topo_->node_count();
  paths_.assign(static_cast<std::size_t>(n) * n, {});
  reachable_.assign(static_cast<std::size_t>(n) * n, false);
  if (policy_ == RoutingPolicy::kWidestPath) {
    recompute_widest();
  } else {
    recompute_min_hop();
  }
}

void RoutingTable::recompute_min_hop() {
  const int n = topo_->node_count();

  // BFS from every source. Neighbors are explored in out-link insertion
  // order, which fixes the tie-break deterministically.
  for (NodeId src = 0; src < n; ++src) {
    std::vector<LinkId> in_link(n, kInvalidLink);
    std::vector<NodeId> parent(n, kInvalidNode);
    std::vector<bool> seen(n, false);
    std::queue<NodeId> queue;
    seen[src] = true;
    queue.push(src);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop();
      for (LinkId l : topo_->out_links(u)) {
        const NodeId v = topo_->link(l).dst;
        if (seen[v]) continue;
        seen[v] = true;
        parent[v] = u;
        in_link[v] = l;
        queue.push(v);
      }
    }
    for (NodeId dst = 0; dst < n; ++dst) {
      if (!seen[dst]) continue;
      reachable_[static_cast<std::size_t>(src) * n + dst] = true;
      if (dst == src) continue;
      std::vector<LinkId> rev;
      for (NodeId v = dst; v != src; v = parent[v]) rev.push_back(in_link[v]);
      std::reverse(rev.begin(), rev.end());
      paths_[static_cast<std::size_t>(src) * n + dst] = std::move(rev);
    }
  }
}

void RoutingTable::recompute_widest() {
  const int n = topo_->node_count();

  // Widest-path Dijkstra from every source: maximize the bottleneck
  // capacity, break ties by hop count, then by lower node id.
  for (NodeId src = 0; src < n; ++src) {
    std::vector<Bps> width(n, -1);
    std::vector<int> hops(n, 0);
    std::vector<LinkId> in_link(n, kInvalidLink);
    std::vector<NodeId> parent(n, kInvalidNode);
    std::vector<bool> done(n, false);
    width[src] = kUnlimitedRate;

    for (int round = 0; round < n; ++round) {
      NodeId u = kInvalidNode;
      for (NodeId v = 0; v < n; ++v) {
        if (done[v] || width[v] < 0) continue;
        if (u == kInvalidNode || width[v] > width[u] ||
            (width[v] == width[u] && hops[v] < hops[u])) {
          u = v;
        }
      }
      if (u == kInvalidNode) break;
      done[u] = true;
      for (LinkId l : topo_->out_links(u)) {
        const NodeId v = topo_->link(l).dst;
        if (done[v]) continue;
        const Bps through = std::min(width[u], topo_->link(l).capacity);
        const int h = hops[u] + 1;
        if (through > width[v] || (through == width[v] && h < hops[v])) {
          width[v] = through;
          hops[v] = h;
          parent[v] = u;
          in_link[v] = l;
        }
      }
    }

    for (NodeId dst = 0; dst < n; ++dst) {
      if (width[dst] < 0) continue;
      reachable_[static_cast<std::size_t>(src) * n + dst] = true;
      if (dst == src) continue;
      std::vector<LinkId> rev;
      for (NodeId v = dst; v != src; v = parent[v]) rev.push_back(in_link[v]);
      std::reverse(rev.begin(), rev.end());
      paths_[static_cast<std::size_t>(src) * n + dst] = std::move(rev);
    }
  }
}

const std::vector<LinkId>& RoutingTable::path(NodeId src, NodeId dst) const {
  return paths_.at(static_cast<std::size_t>(src) * topo_->node_count() + dst);
}

bool RoutingTable::reachable(NodeId src, NodeId dst) const {
  return reachable_.at(static_cast<std::size_t>(src) * topo_->node_count() + dst);
}

}  // namespace bass::net
