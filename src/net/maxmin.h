// Max-min fair bandwidth allocation (progressive filling / water-filling)
// with per-flow demand caps. Pure function so the fairness invariants are
// directly testable; the Network wraps it with event-driven bookkeeping.
//
// This models what TCP-like congestion control converges to on shared
// links, which is the regime the paper's testbed (tc-shaped links carrying
// real application traffic) operates in.
#pragma once

#include <vector>

#include "net/types.h"

namespace bass::net {

struct AllocEntity {
  // Demand cap in bps; use kUnlimitedRate for backlogged flows.
  double demand = 0.0;
  // Directed links the flow traverses (no duplicates). Must be non-empty
  // for any entity with positive demand.
  std::vector<LinkId> links;
};

// Returns the max-min fair rate (bps) for each entity, in input order.
// `capacities[l]` is the capacity of directed link l.
std::vector<double> max_min_allocate(const std::vector<double>& capacities,
                                     const std::vector<AllocEntity>& entities);

// Proportional-share alternative (ablation baseline): every flow is scaled
// by the worst oversubscription ratio along its path, so a congested link
// punishes all of its flows proportionally to their demands instead of
// equalizing them. Models rate-proportional behaviours (e.g. UDP senders
// without backoff, or weighted shaping).
std::vector<double> proportional_allocate(const std::vector<double>& capacities,
                                          const std::vector<AllocEntity>& entities);

}  // namespace bass::net
