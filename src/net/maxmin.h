// Max-min fair bandwidth allocation (progressive filling / water-filling)
// with per-flow demand caps. Pure functions so the fairness invariants are
// directly testable; the Network wraps them with event-driven bookkeeping.
//
// This models what TCP-like congestion control converges to on shared
// links, which is the regime the paper's testbed (tc-shaped links carrying
// real application traffic) operates in.
//
// Two implementations are provided:
//
//  * MaxMinSolver — the production active-set kernel. All unfrozen flows
//    share one common water level, and the candidate bottleneck set (link
//    saturation levels plus a sorted demand frontier) is kept in a lazy
//    min-heap, so a round costs O(log links) instead of a scan of every
//    flow × every link. Entities reference their paths instead of owning
//    copies. Scratch is flat struct-of-arrays carved from a bump arena:
//    per-solve state lives in dense arrays indexed by *active-link
//    position* (assigned via a version stamp, so cost scales with the
//    links the entities cross, not with `capacities`), the link↔flow
//    incidence is CSR (offsets + one flat index array, both directions),
//    and the saturation scan / freeze subtraction run through the portable
//    SIMD kernels in util/simd.h. Steady-state solves perform zero heap
//    allocations once the arena reaches the workload's high-water mark
//    (asserted by tests/maxmin_alloc_test.cpp and gated in
//    bench_alloc_fastpath).
//  * max_min_allocate_reference — the original brute-force kernel, retained
//    as the oracle for property tests and as the from-scratch baseline in
//    bench_alloc_fastpath.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/types.h"
#include "util/arena.h"
#include "util/simd.h"

namespace bass::net {

struct AllocEntity {
  // Demand cap in bps; use kUnlimitedRate for backlogged flows.
  double demand = 0.0;
  // Directed links the flow traverses (no duplicates). Must be non-empty
  // for any entity with positive demand.
  std::vector<LinkId> links;
};

// Non-owning entity: the path lives elsewhere (the routing table, in
// Network's case) and must outlive the solve call.
struct AllocEntityRef {
  double demand = 0.0;
  const std::vector<LinkId>* links = nullptr;
};

// Absolute slack below which a link counts as saturated / a demand as met.
// Shared by both kernels so they freeze at identical thresholds.
inline constexpr double kAllocEps = 1e-3;  // 0.001 bps

// Active-set water-filling solver with reusable scratch. A single instance
// amortizes its arena and per-link stamp arrays across solves; solve cost
// scales with the links the entities cross, not with the size of
// `capacities`.
class MaxMinSolver {
 public:
  // Returns the max-min fair rate (bps) per entity, in input order. The
  // returned reference is invalidated by the next solve() call.
  // `capacities[l]` is the capacity of directed link l; every LinkId in an
  // entity path must index into it.
  const std::vector<double>& solve(const std::vector<double>& capacities,
                                   const std::vector<AllocEntityRef>& entities);

  // Water-filling rounds executed by the last solve (diagnostics).
  std::int64_t last_rounds() const { return last_rounds_; }

  // SIMD toggle. Defaults to the compile-time BASS_SIMD setting; the scalar
  // path is the reference and tests flip this to cross-check bit-for-bit.
  // Forcing it on without compiled SIMD support stays scalar.
  bool use_simd() const { return use_simd_; }
  void set_use_simd(bool on) { use_simd_ = on && util::simd::kCompiled; }

  // Scratch diagnostics: arena high-water capacity and how often it grew.
  // A warmed-up solver's growth count stops moving (zero-alloc steady
  // state); tests assert this directly.
  std::size_t scratch_bytes() const { return arena_.capacity(); }
  std::int64_t scratch_growths() const { return arena_.growths(); }

 private:
  // (saturation level, dense active-link index); ordered by std::greater so
  // the heap is a min-heap over levels with index tie-break.
  using HeapEntry = std::pair<double, std::uint32_t>;

  void ensure_links(std::size_t nl);

  // ---- Persistent per-link state (indexed by LinkId, grow-only) ----
  std::uint32_t stamp_ = 0;
  std::vector<std::uint32_t> link_stamp_;  // == stamp_ => link is active
  std::vector<std::uint32_t> link_dense_;  // LinkId -> dense active index

  // ---- Per-solve scratch, carved from the arena each solve ----
  // Dense SoA over active links (index = discovery order, deterministic):
  util::Arena arena_;
  double* remaining_ = nullptr;      // residual capacity
  double* unfrozen_ = nullptr;       // unfrozen flow count (double: feeds
                                     // the vectorized fair-share division)
  double* share_ = nullptr;          // saturation-scan output
  double* offered_ = nullptr;        // Σ demand over the link's flows
  LinkId* active_links_ = nullptr;   // dense index -> LinkId
  // CSR incidence, both directions:
  std::uint32_t* csr_off_ = nullptr;   // link k's flows: csr_flows_[off[k]..off[k+1])
  std::uint32_t* csr_pos_ = nullptr;   // build cursors (counts, then fill)
  std::int32_t* csr_flows_ = nullptr;
  std::uint32_t* flow_off_ = nullptr;  // flow f's links: flow_dense_[off[f]..off[f+1])
  std::uint32_t* flow_dense_ = nullptr;
  // Per-flow state:
  double* demand_ = nullptr;  // dense copy (cache-friendly freeze/epilogue)
  char* frozen_ = nullptr;
  HeapEntry* demand_events_ = nullptr;  // (demand, flow), sorted ascending
  HeapEntry* heap_ = nullptr;

  std::vector<double> rates_;  // the returned allocation
  std::int64_t last_rounds_ = 0;
  bool use_simd_ = util::simd::kCompiled;
};

// Convenience wrapper over MaxMinSolver for owned entities (tests, ad-hoc
// callers). Returns the max-min fair rate (bps) for each entity, in input
// order.
std::vector<double> max_min_allocate(const std::vector<double>& capacities,
                                     const std::vector<AllocEntity>& entities);

// The original O(rounds × flows × links) progressive-filling kernel, kept
// verbatim as the oracle: the active-set kernel must match it within
// kAllocEps on every instance (tests/maxmin_property_test.cpp).
std::vector<double> max_min_allocate_reference(
    const std::vector<double>& capacities,
    const std::vector<AllocEntity>& entities);

// Proportional-share alternative (ablation baseline): every flow is scaled
// by the worst oversubscription ratio along its path, so a congested link
// punishes all of its flows proportionally to their demands instead of
// equalizing them. Models rate-proportional behaviours (e.g. UDP senders
// without backoff, or weighted shaping).
std::vector<double> proportional_allocate(const std::vector<double>& capacities,
                                          const std::vector<AllocEntity>& entities);

// Reference-based variant used by Network's entity cache. The unlimited-
// demand cap is the max over the *full* capacities vector, so a solve
// restricted to one contention component yields exactly the rates of a
// whole-network solve (the cap is global, the per-link offered loads are
// component-local by construction).
std::vector<double> proportional_allocate_refs(
    const std::vector<double>& capacities,
    const std::vector<AllocEntityRef>& entities);

}  // namespace bass::net
