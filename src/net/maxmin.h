// Max-min fair bandwidth allocation (progressive filling / water-filling)
// with per-flow demand caps. Pure functions so the fairness invariants are
// directly testable; the Network wraps them with event-driven bookkeeping.
//
// This models what TCP-like congestion control converges to on shared
// links, which is the regime the paper's testbed (tc-shaped links carrying
// real application traffic) operates in.
//
// Two implementations are provided:
//
//  * MaxMinSolver — the production active-set kernel. All unfrozen flows
//    share one common water level, and the candidate bottleneck set (link
//    saturation levels plus a sorted demand frontier) is kept in a lazy
//    min-heap, so a round costs O(log links) instead of a scan of every
//    flow × every link. Entities reference their paths instead of owning
//    copies, and
//    per-link scratch is stamped rather than cleared, so a solve touches
//    only the links the given entities actually cross — which is what makes
//    contention-component-restricted reallocation in Network cheap.
//  * max_min_allocate_reference — the original brute-force kernel, retained
//    as the oracle for property tests and as the from-scratch baseline in
//    bench_alloc_fastpath.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/types.h"

namespace bass::net {

struct AllocEntity {
  // Demand cap in bps; use kUnlimitedRate for backlogged flows.
  double demand = 0.0;
  // Directed links the flow traverses (no duplicates). Must be non-empty
  // for any entity with positive demand.
  std::vector<LinkId> links;
};

// Non-owning entity: the path lives elsewhere (the routing table, in
// Network's case) and must outlive the solve call.
struct AllocEntityRef {
  double demand = 0.0;
  const std::vector<LinkId>* links = nullptr;
};

// Absolute slack below which a link counts as saturated / a demand as met.
// Shared by both kernels so they freeze at identical thresholds.
inline constexpr double kAllocEps = 1e-3;  // 0.001 bps

// Active-set water-filling solver with reusable scratch. A single instance
// amortizes its per-link arrays across solves: scratch entries are
// initialized lazily via a version stamp, so solve cost scales with the
// links the entities cross, not with the size of `capacities`.
class MaxMinSolver {
 public:
  // Returns the max-min fair rate (bps) per entity, in input order. The
  // returned reference is invalidated by the next solve() call.
  // `capacities[l]` is the capacity of directed link l; every LinkId in an
  // entity path must index into it.
  const std::vector<double>& solve(const std::vector<double>& capacities,
                                   const std::vector<AllocEntityRef>& entities);

  // Water-filling rounds executed by the last solve (diagnostics).
  std::int64_t last_rounds() const { return last_rounds_; }

 private:
  void ensure_links(std::size_t nl);

  std::uint32_t stamp_ = 0;
  std::vector<std::uint32_t> link_stamp_;     // == stamp_ => initialized
  std::vector<double> remaining_;             // per-link residual capacity
  std::vector<int> unfrozen_on_link_;         // per-link unfrozen flow count
  std::vector<std::vector<int>> flows_on_link_;
  std::vector<LinkId> active_links_;          // links with unfrozen flows
  // Lazy min-heap of (saturation level, link). Saturation levels only grow
  // as flows freeze, so stale entries are re-keyed on pop.
  std::vector<std::pair<double, LinkId>> heap_;
  std::vector<int> demand_order_;             // finite-demand flows, ascending
  std::vector<char> frozen_;
  std::vector<double> rates_;
  std::int64_t last_rounds_ = 0;
};

// Convenience wrapper over MaxMinSolver for owned entities (tests, ad-hoc
// callers). Returns the max-min fair rate (bps) for each entity, in input
// order.
std::vector<double> max_min_allocate(const std::vector<double>& capacities,
                                     const std::vector<AllocEntity>& entities);

// The original O(rounds × flows × links) progressive-filling kernel, kept
// verbatim as the oracle: the active-set kernel must match it within
// kAllocEps on every instance (tests/maxmin_property_test.cpp).
std::vector<double> max_min_allocate_reference(
    const std::vector<double>& capacities,
    const std::vector<AllocEntity>& entities);

// Proportional-share alternative (ablation baseline): every flow is scaled
// by the worst oversubscription ratio along its path, so a congested link
// punishes all of its flows proportionally to their demands instead of
// equalizing them. Models rate-proportional behaviours (e.g. UDP senders
// without backoff, or weighted shaping).
std::vector<double> proportional_allocate(const std::vector<double>& capacities,
                                          const std::vector<AllocEntity>& entities);

// Reference-based variant used by Network's entity cache. The unlimited-
// demand cap is the max over the *full* capacities vector, so a solve
// restricted to one contention component yields exactly the rates of a
// whole-network solve (the cap is global, the per-link offered loads are
// component-local by construction).
std::vector<double> proportional_allocate_refs(
    const std::vector<double>& capacities,
    const std::vector<AllocEntityRef>& entities);

}  // namespace bass::net
