#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/logging.h"

namespace bass::net {

namespace {

// Drain time in whole microseconds for `bytes` at `rate_bps`, rounded up.
// Dispatches to the configured fairness policy.
std::vector<double> allocate_rates(net::FairnessPolicy policy,
                                   const std::vector<double>& capacities,
                                   const std::vector<net::AllocEntity>& entities) {
  if (policy == net::FairnessPolicy::kProportional) {
    return net::proportional_allocate(capacities, entities);
  }
  return net::max_min_allocate(capacities, entities);
}

sim::Duration drain_micros(double bytes, double rate_bps) {
  if (rate_bps <= 0.0) return -1;  // stalled
  const double us = bytes * 8.0 * 1e6 / rate_bps;
  return static_cast<sim::Duration>(std::ceil(us));
}

// Bytes moved in `dt` microseconds at `rate_bps`.
double bytes_in(sim::Duration dt, double rate_bps) {
  return rate_bps * static_cast<double>(dt) / 8e6;
}

}  // namespace

Network::Network(sim::Simulation& sim, Topology topology, NetworkConfig config)
    : sim_(&sim),
      topology_(std::move(topology)),
      routing_(topology_, config.routing),
      config_(config),
      link_allocated_(static_cast<std::size_t>(topology_.link_count()), 0.0) {}

Network::BatchUpdate::BatchUpdate(Network& net) : net_(net) { ++net_.batch_depth_; }

Network::BatchUpdate::~BatchUpdate() {
  if (--net_.batch_depth_ == 0 && net_.batch_dirty_) {
    net_.batch_dirty_ = false;
    net_.reallocate();
  }
}

void Network::set_link_capacity(LinkId link, Bps capacity) {
  if (topology_.link(link).capacity == capacity) return;
  settle_all();  // progress flows at old rates before the world changes
  topology_.set_capacity(link, std::max<Bps>(capacity, 0));
  if (batch_depth_ > 0) {
    batch_dirty_ = true;
  } else {
    reallocate();
  }
}

void Network::set_link_capacity_between(NodeId a, NodeId b, Bps capacity) {
  BatchUpdate batch(*this);
  if (auto ab = topology_.link_between(a, b)) set_link_capacity(*ab, capacity);
  if (auto ba = topology_.link_between(b, a)) set_link_capacity(*ba, capacity);
}

Bps Network::link_allocated(LinkId link) const {
  return static_cast<Bps>(link_allocated_.at(static_cast<std::size_t>(link)));
}

Network::Channel& Network::channel_for(NodeId src, NodeId dst) {
  const std::int64_t key = channel_key(src, dst);
  auto [it, inserted] = channels_.try_emplace(key);
  if (inserted) {
    it->second.src = src;
    it->second.dst = dst;
    it->second.last_update = sim_->now();
  }
  return it->second;
}

TransferId Network::start_transfer(NodeId src, NodeId dst, std::int64_t bytes,
                                   TransferCallback done, Tag tag) {
  assert(bytes >= 0);
  const TransferId id = next_transfer_++;

  if (src == dst) {
    // Colocated components talk over loopback; no mesh involvement.
    const sim::Duration dt =
        config_.loopback_latency +
        std::max<sim::Duration>(drain_micros(static_cast<double>(bytes),
                                             static_cast<double>(config_.loopback_bps)),
                                0);
    account_bytes(tag, static_cast<double>(bytes));
    sim_->schedule_after(dt, [done = std::move(done)] {
      if (done) done();
    });
    return id;
  }

  assert(routing_.reachable(src, dst) && "transfer between partitioned nodes");
  Channel& ch = channel_for(src, dst);
  const bool was_idle = ch.fifo.empty();
  ch.fifo.push_back(Transfer{id, static_cast<double>(bytes), bytes, std::move(done), tag});
  transfer_channel_[id] = channel_key(src, dst);
  if (was_idle) {
    settle_all();
    active_channels_.push_back(channel_key(src, dst));
    reallocate();  // a new contender changes everyone's share
  }
  // else: the channel was already backlogged; rates are unchanged.
  return id;
}

bool Network::cancel_transfer(TransferId id) {
  const auto it = transfer_channel_.find(id);
  if (it == transfer_channel_.end()) return false;
  const std::int64_t key = it->second;
  Channel& ch = channels_.at(key);
  auto pos = std::find_if(ch.fifo.begin(), ch.fifo.end(),
                          [id](const Transfer& t) { return t.id == id; });
  if (pos == ch.fifo.end()) return false;
  const bool was_head = (pos == ch.fifo.begin());
  if (was_head) settle_channel(ch);
  transfer_channel_.erase(it);
  ch.fifo.erase(pos);
  if (was_head) {
    if (ch.head_event != sim::kInvalidEvent) {
      sim_->cancel(ch.head_event);
      ch.head_event = sim::kInvalidEvent;
    }
    if (ch.fifo.empty()) {
      settle_all();
      std::erase(active_channels_, key);
      reallocate();
    } else {
      schedule_head_event(key);
    }
  }
  return true;
}

StreamId Network::open_stream(NodeId src, NodeId dst, Bps demand, Tag tag) {
  const StreamId id = next_stream_++;
  Stream st;
  st.src = src;
  st.dst = dst;
  st.demand = std::max<Bps>(demand, 0);
  st.tag = tag;
  st.last_update = sim_->now();
  if (src == dst) {
    // Loopback streams always run at full demand.
    st.rate_bps = static_cast<double>(st.demand);
    streams_[id] = st;
    return id;
  }
  assert(routing_.reachable(src, dst) && "stream between partitioned nodes");
  settle_all();
  streams_[id] = st;
  reallocate();
  return id;
}

void Network::set_stream_demand(StreamId id, Bps demand) {
  auto it = streams_.find(id);
  if (it == streams_.end()) return;
  if (it->second.demand == demand) return;
  settle_all();
  it->second.demand = std::max<Bps>(demand, 0);
  if (it->second.src == it->second.dst) {
    it->second.rate_bps = static_cast<double>(it->second.demand);
    return;
  }
  reallocate();
}

void Network::close_stream(StreamId id) {
  auto it = streams_.find(id);
  if (it == streams_.end()) return;
  settle_all();
  const bool meshed = it->second.src != it->second.dst;
  streams_.erase(it);
  if (meshed) reallocate();
}

Bps Network::stream_rate(StreamId id) const {
  const auto it = streams_.find(id);
  if (it == streams_.end()) return 0;
  return static_cast<Bps>(it->second.rate_bps);
}

Bps Network::path_capacity(NodeId src, NodeId dst) const {
  if (src == dst) return config_.loopback_bps;
  if (!routing_.reachable(src, dst)) return 0;
  Bps bottleneck = kUnlimitedRate;
  for (LinkId l : routing_.path(src, dst)) {
    bottleneck = std::min(bottleneck, topology_.link(l).capacity);
  }
  return bottleneck;
}

Bps Network::path_available(NodeId src, NodeId dst) const {
  if (src == dst) return config_.loopback_bps;
  if (!routing_.reachable(src, dst)) return 0;

  // Re-run the allocator with a phantom unbounded flow on the path.
  std::vector<double> capacities(static_cast<std::size_t>(topology_.link_count()));
  for (int l = 0; l < topology_.link_count(); ++l) {
    capacities[static_cast<std::size_t>(l)] = static_cast<double>(topology_.link(l).capacity);
  }
  std::vector<AllocEntity> entities;
  for (std::int64_t key : active_channels_) {
    const Channel& ch = channels_.at(key);
    entities.push_back({static_cast<double>(kUnlimitedRate),
                        routing_.path(ch.src, ch.dst)});
  }
  for (const auto& [id, st] : streams_) {
    if (st.src == st.dst || st.demand <= 0) continue;
    entities.push_back({static_cast<double>(st.demand), routing_.path(st.src, st.dst)});
  }
  entities.push_back({static_cast<double>(kUnlimitedRate), routing_.path(src, dst)});
  const auto rates = allocate_rates(config_.fairness, capacities, entities);
  return static_cast<Bps>(rates.back());
}

void Network::account_bytes(Tag tag, double bytes) {
  total_bytes_delivered_ += static_cast<std::int64_t>(bytes);
  if (tag == 0) return;
  tag_bytes_window_[tag] += bytes;
  tag_bytes_total_[tag] += bytes;
}

std::int64_t Network::take_tag_bytes(Tag tag) {
  settle_all();
  auto it = tag_bytes_window_.find(tag);
  if (it == tag_bytes_window_.end()) return 0;
  const auto bytes = static_cast<std::int64_t>(it->second);
  it->second = 0.0;
  return bytes;
}

std::int64_t Network::total_tag_bytes(Tag tag) {
  settle_all();
  const auto it = tag_bytes_total_.find(tag);
  if (it == tag_bytes_total_.end()) return 0;
  return static_cast<std::int64_t>(it->second);
}

void Network::settle_channel(Channel& ch) {
  const sim::Time now = sim_->now();
  const sim::Duration dt = now - ch.last_update;
  ch.last_update = now;
  if (dt <= 0 || ch.fifo.empty() || ch.rate_bps <= 0.0) return;
  double moved = bytes_in(dt, ch.rate_bps);
  Transfer& head = ch.fifo.front();
  // Rounding of the completion event can make `moved` overshoot slightly.
  moved = std::min(moved, head.bytes_remaining);
  head.bytes_remaining -= moved;
  account_bytes(head.tag, moved);
}

void Network::settle_stream(Stream& st) {
  const sim::Time now = sim_->now();
  const sim::Duration dt = now - st.last_update;
  st.last_update = now;
  if (dt <= 0 || st.rate_bps <= 0.0) return;
  const double moved = bytes_in(dt, st.rate_bps) + st.byte_carry;
  st.byte_carry = 0.0;
  account_bytes(st.tag, moved);
}

void Network::settle_all() {
  for (std::int64_t key : active_channels_) settle_channel(channels_.at(key));
  for (auto& [id, st] : streams_) settle_stream(st);
}

void Network::reallocate() {
  if (batch_depth_ > 0) {
    batch_dirty_ = true;
    return;
  }
  ++reallocation_count_;

  std::vector<double> capacities(static_cast<std::size_t>(topology_.link_count()));
  for (int l = 0; l < topology_.link_count(); ++l) {
    capacities[static_cast<std::size_t>(l)] = static_cast<double>(topology_.link(l).capacity);
  }

  // Entities: active channels first, then demanding mesh streams (matching
  // iteration below). Order within the vector does not affect fairness.
  std::vector<AllocEntity> entities;
  entities.reserve(active_channels_.size() + streams_.size());
  for (std::int64_t key : active_channels_) {
    const Channel& ch = channels_.at(key);
    entities.push_back({static_cast<double>(kUnlimitedRate),
                        routing_.path(ch.src, ch.dst)});
  }
  std::vector<StreamId> mesh_streams;
  for (auto& [id, st] : streams_) {
    if (st.src == st.dst || st.demand <= 0) continue;
    mesh_streams.push_back(id);
  }
  // Deterministic iteration regardless of hash-map order.
  std::sort(mesh_streams.begin(), mesh_streams.end());
  for (StreamId id : mesh_streams) {
    const Stream& st = streams_.at(id);
    entities.push_back({static_cast<double>(st.demand), routing_.path(st.src, st.dst)});
  }

  const auto rates = allocate_rates(config_.fairness, capacities, entities);

  std::fill(link_allocated_.begin(), link_allocated_.end(), 0.0);
  std::size_t idx = 0;
  for (std::int64_t key : active_channels_) {
    Channel& ch = channels_.at(key);
    ch.rate_bps = rates[idx];
    for (LinkId l : routing_.path(ch.src, ch.dst)) {
      link_allocated_[static_cast<std::size_t>(l)] += rates[idx];
    }
    ++idx;
    schedule_head_event(key);
  }
  for (StreamId id : mesh_streams) {
    Stream& st = streams_.at(id);
    st.rate_bps = rates[idx];
    for (LinkId l : routing_.path(st.src, st.dst)) {
      link_allocated_[static_cast<std::size_t>(l)] += rates[idx];
    }
    ++idx;
  }
}

void Network::schedule_head_event(std::int64_t key) {
  Channel& ch = channels_.at(key);
  if (ch.head_event != sim::kInvalidEvent) {
    sim_->cancel(ch.head_event);
    ch.head_event = sim::kInvalidEvent;
  }
  if (ch.fifo.empty()) return;
  const sim::Duration drain = drain_micros(ch.fifo.front().bytes_remaining, ch.rate_bps);
  if (drain < 0) return;  // stalled: wait for a rate change
  ch.head_event = sim_->schedule_after(drain, [this, key] { complete_head(key); });
}

void Network::complete_head(std::int64_t key) {
  Channel& ch = channels_.at(key);
  ch.head_event = sim::kInvalidEvent;
  settle_channel(ch);
  assert(!ch.fifo.empty());
  Transfer head = std::move(ch.fifo.front());
  ch.fifo.pop_front();
  transfer_channel_.erase(head.id);
  // Account any residue lost to event rounding.
  if (head.bytes_remaining > 0.0) account_bytes(head.tag, head.bytes_remaining);

  if (ch.fifo.empty()) {
    settle_all();
    std::erase(active_channels_, key);
    reallocate();
  } else {
    schedule_head_event(key);
  }

  // Delivery completes after propagation over the path's hops.
  const sim::Duration hop_delay =
      config_.per_hop_latency * routing_.hops(ch.src, ch.dst);
  if (head.done) {
    sim_->schedule_after(hop_delay, [done = std::move(head.done)] { done(); });
  }
}

}  // namespace bass::net
