#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>

#include "util/logging.h"

namespace bass::net {

namespace {

// Drain time in whole microseconds for `bytes` at `rate_bps`, rounded up.
sim::Duration drain_micros(double bytes, double rate_bps) {
  if (rate_bps <= 0.0) return -1;  // stalled
  const double us = bytes * 8.0 * 1e6 / rate_bps;
  return static_cast<sim::Duration>(std::ceil(us));
}

// Bytes moved in `dt` microseconds at `rate_bps`.
double bytes_in(sim::Duration dt, double rate_bps) {
  return rate_bps * static_cast<double>(dt) / 8e6;
}

}  // namespace

Network::Network(sim::Simulation& sim, Topology topology, NetworkConfig config)
    : sim_(&sim),
      topology_(std::move(topology)),
      routing_(topology_, config.routing),
      config_(config),
      link_entities_(static_cast<std::size_t>(topology_.link_count())),
      link_visit_(static_cast<std::size_t>(topology_.link_count()), 0),
      capacities_(static_cast<std::size_t>(topology_.link_count()), 0.0),
      link_allocated_(static_cast<std::size_t>(topology_.link_count()), 0.0),
      nominal_capacity_(static_cast<std::size_t>(topology_.link_count()), 0),
      link_down_(static_cast<std::size_t>(topology_.link_count()), 0) {
  for (int l = 0; l < topology_.link_count(); ++l) {
    capacities_[static_cast<std::size_t>(l)] =
        static_cast<double>(topology_.link(l).capacity);
    nominal_capacity_[static_cast<std::size_t>(l)] = topology_.link(l).capacity;
  }
  // Routing is fixed for the Network's lifetime, so the longest routed path
  // bounds every entity path forever — it sizes the flat link_pos pool.
  for (NodeId s = 0; s < topology_.node_count(); ++s) {
    for (NodeId d = 0; d < topology_.node_count(); ++d) {
      link_pos_stride_ = std::max(
          link_pos_stride_, static_cast<std::size_t>(routing_.hops(s, d)));
    }
  }
}

Network::BatchUpdate::BatchUpdate(Network& net) : net_(net) { ++net_.batch_depth_; }

Network::BatchUpdate::~BatchUpdate() {
  if (--net_.batch_depth_ == 0 && net_.batch_dirty_) {
    net_.batch_dirty_ = false;
    net_.reallocate();
  }
}

void Network::set_recorder(obs::Recorder* recorder) {
  recorder_ = recorder;
  if (recorder == nullptr) {
    m_reallocations_ = nullptr;
    m_full_reallocations_ = nullptr;
    m_flows_touched_ = nullptr;
    m_links_touched_ = nullptr;
    m_alloc_pass_us_ = nullptr;
    return;
  }
  auto& metrics = recorder->metrics();
  m_reallocations_ = &metrics.counter("net.reallocations");
  m_full_reallocations_ = &metrics.counter("net.full_reallocations");
  m_flows_touched_ = &metrics.counter("net.flows_touched");
  m_links_touched_ = &metrics.counter("net.links_touched");
  m_alloc_pass_us_ = &metrics.log_timer_us("net.alloc_pass_us");
}

void Network::apply_capacity(LinkId link, Bps capacity) {
  if (topology_.link(link).capacity == capacity) return;
  if (recorder_ != nullptr) {
    obs::LinkCapacityChanged changed;
    changed.at = sim_->now();
    changed.link = link;
    changed.old_bps = topology_.link(link).capacity;
    changed.new_bps = std::max<Bps>(capacity, 0);
    // Attribute to whatever scope is driving the change (a fault action, a
    // trace tick has none); capacity changes are effects, never causes.
    changed.parent = recorder_->current_span();
    recorder_->record(changed);
  }
  // No settling here: flows whose rate the change can affect are settled at
  // their pre-change rates inside reallocate(), which runs at this same
  // instant (or at batch close, still within the same event).
  topology_.set_capacity(link, std::max<Bps>(capacity, 0));
  capacities_[static_cast<std::size_t>(link)] =
      static_cast<double>(topology_.link(link).capacity);
  dirty_links_.push_back(link);
  if (batch_depth_ > 0) {
    batch_dirty_ = true;
  } else {
    reallocate();
  }
}

void Network::set_link_capacity(LinkId link, Bps capacity) {
  nominal_capacity_[static_cast<std::size_t>(link)] = std::max<Bps>(capacity, 0);
  if (link_is_down(link)) return;  // remembered; applied on link_up
  apply_capacity(link, capacity);
}

void Network::set_link_capacity_between(NodeId a, NodeId b, Bps capacity) {
  BatchUpdate batch(*this);
  if (auto ab = topology_.link_between(a, b)) set_link_capacity(*ab, capacity);
  if (auto ba = topology_.link_between(b, a)) set_link_capacity(*ba, capacity);
}

void Network::set_link_down(LinkId link, bool down) {
  if (link_is_down(link) == down) return;
  link_down_[static_cast<std::size_t>(link)] = down ? 1 : 0;
  apply_capacity(link, down ? 0 : nominal_capacity_[static_cast<std::size_t>(link)]);
}

void Network::set_link_down_between(NodeId a, NodeId b, bool down) {
  BatchUpdate batch(*this);
  if (auto ab = topology_.link_between(a, b)) set_link_down(*ab, down);
  if (auto ba = topology_.link_between(b, a)) set_link_down(*ba, down);
}

Bps Network::link_allocated(LinkId link) const {
  return static_cast<Bps>(link_allocated_.at(static_cast<std::size_t>(link)));
}

Network::Channel& Network::channel_for(NodeId src, NodeId dst) {
  const std::int64_t key = channel_key(src, dst);
  auto [it, inserted] = channels_.try_emplace(key);
  if (inserted) {
    it->second.src = src;
    it->second.dst = dst;
    it->second.last_update = sim_->now();
  }
  return it->second;
}

int Network::add_entity(double demand, const std::vector<LinkId>* path,
                        Channel* ch, Stream* st, std::int64_t key) {
  int slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<int>(entities_.size());
    entities_.emplace_back();
    entity_visit_.push_back(0);
    link_pos_pool_.resize(entities_.size() * link_pos_stride_);
  }
  Entity& e = entities_[static_cast<std::size_t>(slot)];
  e.demand = demand;
  e.path = path;
  e.channel = ch;
  e.stream = st;
  e.key = key;
  e.active = true;
  assert(path->size() <= link_pos_stride_ && "path exceeds routed maximum");
  std::uint32_t* pos = link_pos(slot);
  for (std::size_t i = 0; i < path->size(); ++i) {
    auto& occupants = link_entities_[static_cast<std::size_t>((*path)[i])];
    pos[i] = static_cast<std::uint32_t>(occupants.size());
    occupants.push_back({slot, static_cast<std::uint32_t>(i)});
  }
  ++active_entity_count_;
  if (ch != nullptr) ++active_channel_entities_;
  dirty_entities_.push_back(slot);
  return slot;
}

void Network::remove_entity(int slot) {
  Entity& e = entities_[static_cast<std::size_t>(slot)];
  assert(e.active);
  const std::uint32_t* my_pos = link_pos(slot);
  for (std::size_t i = 0; i < e.path->size(); ++i) {
    const LinkId l = (*e.path)[i];
    auto& occupants = link_entities_[static_cast<std::size_t>(l)];
    const std::uint32_t pos = my_pos[i];
    occupants[pos] = occupants.back();
    const LinkRef moved = occupants[pos];
    link_pos(moved.slot)[moved.path_idx] = pos;
    occupants.pop_back();
    // The vacated capacity may redistribute to whatever shared this link.
    dirty_links_.push_back(l);
  }
  --active_entity_count_;
  if (e.channel != nullptr) --active_channel_entities_;
  e.active = false;
  e.channel = nullptr;
  e.stream = nullptr;
  e.path = nullptr;
  free_slots_.push_back(slot);
}

TransferId Network::start_transfer(NodeId src, NodeId dst, std::int64_t bytes,
                                   TransferCallback done, Tag tag) {
  assert(bytes >= 0);
  const TransferId id = next_transfer_++;

  if (src == dst) {
    // Colocated components talk over loopback; no mesh involvement.
    const sim::Duration dt =
        config_.loopback_latency +
        std::max<sim::Duration>(drain_micros(static_cast<double>(bytes),
                                             static_cast<double>(config_.loopback_bps)),
                                0);
    account_bytes(tag, static_cast<double>(bytes));
    sim_->schedule_after(dt, [done = std::move(done)] {
      if (done) done();
    });
    return id;
  }

  assert(routing_.reachable(src, dst) && "transfer between partitioned nodes");
  Channel& ch = channel_for(src, dst);
  const bool was_idle = ch.fifo.empty();
  ch.fifo.push_back(Transfer{id, static_cast<double>(bytes), bytes, std::move(done), tag});
  transfer_channel_[id] = channel_key(src, dst);
  if (was_idle) {
    // Fresh contender: nothing to settle (it moved no bytes while idle),
    // but the stale idle-period rate must not leak into settlement.
    ch.rate_bps = 0.0;
    ch.last_update = sim_->now();
    ch.entity_slot =
        add_entity(static_cast<double>(kUnlimitedRate),
                   routing_.path_ptr(src, dst), &ch, nullptr, channel_key(src, dst));
    reallocate();  // a new contender changes its component's shares
  }
  // else: the channel was already backlogged; rates are unchanged.
  return id;
}

bool Network::cancel_transfer(TransferId id) {
  const auto it = transfer_channel_.find(id);
  if (it == transfer_channel_.end()) return false;
  const std::int64_t key = it->second;
  Channel& ch = channels_.at(key);
  auto pos = std::find_if(ch.fifo.begin(), ch.fifo.end(),
                          [id](const Transfer& t) { return t.id == id; });
  if (pos == ch.fifo.end()) return false;
  const bool was_head = (pos == ch.fifo.begin());
  if (was_head) settle_channel(ch);
  transfer_channel_.erase(it);
  ch.fifo.erase(pos);
  if (was_head) {
    if (ch.head_event != sim::kInvalidEvent) {
      sim_->cancel(ch.head_event);
      ch.head_event = sim::kInvalidEvent;
    }
    if (ch.fifo.empty()) {
      remove_entity(ch.entity_slot);
      ch.entity_slot = -1;
      reallocate();
    } else {
      schedule_head_event(key);
    }
  }
  return true;
}

Network::Stream* Network::find_stream(StreamId id) {
  const std::uint32_t slot = stream_slot_of(id);
  if (slot >= stream_slots_.size()) return nullptr;
  StreamSlot& s = stream_slots_[slot];
  if (!s.open || s.generation != static_cast<std::uint32_t>(id >> 32)) return nullptr;
  return &s.stream;
}

const Network::Stream* Network::find_stream(StreamId id) const {
  return const_cast<Network*>(this)->find_stream(id);
}

StreamId Network::open_stream(NodeId src, NodeId dst, Bps demand, Tag tag) {
  std::uint32_t slot;
  if (!stream_free_.empty()) {
    slot = stream_free_.back();
    stream_free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(stream_slots_.size());
    stream_slots_.emplace_back();
  }
  StreamSlot& placed_slot = stream_slots_[slot];
  placed_slot.open = true;
  ++open_streams_;
  const StreamId id =
      (static_cast<StreamId>(placed_slot.generation) << 32) | slot;
  Stream& placed = placed_slot.stream;
  placed = Stream{};  // reset a reused slot (Stream owns no heap state)
  placed.src = src;
  placed.dst = dst;
  placed.demand = std::max<Bps>(demand, 0);
  placed.tag = tag;
  placed.last_update = sim_->now();
  if (src == dst) {
    // Loopback streams always run at full demand.
    placed.rate_bps = static_cast<double>(placed.demand);
    return id;
  }
  assert(routing_.reachable(src, dst) && "stream between partitioned nodes");
  if (placed.demand > 0) {
    placed.entity_slot =
        add_entity(static_cast<double>(placed.demand),
                   routing_.path_ptr(src, dst), nullptr, &placed, id);
    reallocate();
  }
  return id;
}

void Network::set_stream_demand(StreamId id, Bps demand) {
  Stream* stp = find_stream(id);
  if (stp == nullptr) return;  // stale handle: no-op by contract
  Stream& st = *stp;
  demand = std::max<Bps>(demand, 0);
  if (st.demand == demand) return;
  if (st.src == st.dst) {
    settle_stream(st);  // progress accounting at the old rate first
    st.demand = demand;
    st.rate_bps = static_cast<double>(demand);
    return;
  }
  st.demand = demand;
  if (st.entity_slot >= 0) {
    if (demand > 0) {
      Entity& e = entities_[static_cast<std::size_t>(st.entity_slot)];
      e.demand = static_cast<double>(demand);
      dirty_entities_.push_back(st.entity_slot);
    } else {
      settle_stream(st);  // leaving the mesh: close out the old rate
      remove_entity(st.entity_slot);
      st.entity_slot = -1;
      st.rate_bps = 0.0;
    }
    reallocate();
  } else if (demand > 0) {
    st.entity_slot = add_entity(static_cast<double>(demand),
                                routing_.path_ptr(st.src, st.dst), nullptr, &st, id);
    reallocate();
  }
}

void Network::close_stream(StreamId id) {
  Stream* stp = find_stream(id);
  if (stp == nullptr) return;  // stale or double close: safe no-op
  Stream& st = *stp;
  settle_stream(st);
  const bool meshed = st.entity_slot >= 0;
  if (meshed) {
    remove_entity(st.entity_slot);
    st.entity_slot = -1;
  }
  StreamSlot& s = stream_slots_[stream_slot_of(id)];
  s.open = false;
  ++s.generation;  // outstanding copies of `id` are stale from here on
  stream_free_.push_back(stream_slot_of(id));
  --open_streams_;
  if (meshed) reallocate();
}

Bps Network::stream_rate(StreamId id) const {
  const Stream* st = find_stream(id);
  if (st == nullptr) return 0;
  return static_cast<Bps>(st->rate_bps);
}

Bps Network::path_capacity(NodeId src, NodeId dst) const {
  if (src == dst) return config_.loopback_bps;
  if (!routing_.reachable(src, dst)) return 0;
  Bps bottleneck = kUnlimitedRate;
  for (LinkId l : routing_.path(src, dst)) {
    bottleneck = std::min(bottleneck, topology_.link(l).capacity);
  }
  return bottleneck;
}

Bps Network::path_available(NodeId src, NodeId dst) const {
  if (src == dst) return config_.loopback_bps;
  if (!routing_.reachable(src, dst)) return 0;

  // Price a phantom unbounded flow on the path against only its contention
  // component — flows sharing no link (transitively) with the path cannot
  // affect its share, and the cached entities already carry their paths.
  static const std::vector<int> kNoSeedEntities;
  collect_component(routing_.path(src, dst), kNoSeedEntities);
  refs_.clear();
  refs_.reserve(comp_entities_.size() + 1);
  for (int slot : comp_entities_) {
    const Entity& e = entities_[static_cast<std::size_t>(slot)];
    refs_.push_back({e.demand, e.path});
  }
  refs_.push_back({static_cast<double>(kUnlimitedRate), routing_.path_ptr(src, dst)});
  if (config_.fairness == FairnessPolicy::kProportional) {
    return static_cast<Bps>(proportional_allocate_refs(capacities_, refs_).back());
  }
  return static_cast<Bps>(solver_.solve(capacities_, refs_).back());
}

void Network::account_bytes(Tag tag, double bytes) {
  total_bytes_delivered_ += static_cast<std::int64_t>(bytes);
  if (tag == 0) return;
  tag_bytes_window_[tag] += bytes;
  tag_bytes_total_[tag] += bytes;
}

std::int64_t Network::take_tag_bytes(Tag tag) {
  settle_all();
  auto it = tag_bytes_window_.find(tag);
  if (it == tag_bytes_window_.end()) return 0;
  const auto bytes = static_cast<std::int64_t>(it->second);
  it->second = 0.0;
  return bytes;
}

std::int64_t Network::total_tag_bytes(Tag tag) {
  settle_all();
  const auto it = tag_bytes_total_.find(tag);
  if (it == tag_bytes_total_.end()) return 0;
  return static_cast<std::int64_t>(it->second);
}

void Network::settle_channel(Channel& ch) {
  const sim::Time now = sim_->now();
  const sim::Duration dt = now - ch.last_update;
  ch.last_update = now;
  if (dt <= 0 || ch.fifo.empty() || ch.rate_bps <= 0.0) return;
  double moved = bytes_in(dt, ch.rate_bps);
  Transfer& head = ch.fifo.front();
  // Rounding of the completion event can make `moved` overshoot slightly.
  moved = std::min(moved, head.bytes_remaining);
  head.bytes_remaining -= moved;
  account_bytes(head.tag, moved);
}

void Network::settle_stream(Stream& st) {
  const sim::Time now = sim_->now();
  const sim::Duration dt = now - st.last_update;
  st.last_update = now;
  if (dt <= 0 || st.rate_bps <= 0.0) return;
  const double moved = bytes_in(dt, st.rate_bps) + st.byte_carry;
  st.byte_carry = 0.0;
  account_bytes(st.tag, moved);
}

void Network::settle_all() {
  for (const Entity& e : entities_) {
    if (e.active && e.channel != nullptr) settle_channel(*e.channel);
  }
  for (StreamSlot& s : stream_slots_) {
    if (s.open) settle_stream(s.stream);
  }
}

void Network::collect_component(const std::vector<LinkId>& seed_links,
                                const std::vector<int>& seed_entities) const {
  ++visit_stamp_;
  if (visit_stamp_ == 0) {  // wrapped: invalidate every stale stamp
    std::fill(link_visit_.begin(), link_visit_.end(), 0u);
    std::fill(entity_visit_.begin(), entity_visit_.end(), 0u);
    visit_stamp_ = 1;
  }
  entity_visit_.resize(entities_.size(), 0);
  comp_entities_.clear();
  comp_links_.clear();

  auto visit_link = [this](LinkId l) {
    const auto li = static_cast<std::size_t>(l);
    if (link_visit_[li] == visit_stamp_) return;
    link_visit_[li] = visit_stamp_;
    comp_links_.push_back(l);
  };
  auto visit_entity = [this](int slot) {
    const auto si = static_cast<std::size_t>(slot);
    if (entity_visit_[si] == visit_stamp_) return;
    entity_visit_[si] = visit_stamp_;
    // Dirty seeds may name freed slots (e.g. opened and closed within one
    // batch); the links such an entity crossed are dirtied at removal.
    if (entities_[si].active) comp_entities_.push_back(slot);
  };

  for (LinkId l : seed_links) visit_link(l);
  for (int slot : seed_entities) {
    visit_entity(slot);
    if (entities_[static_cast<std::size_t>(slot)].active) {
      for (LinkId l : *entities_[static_cast<std::size_t>(slot)].path) visit_link(l);
    }
  }
  // comp_links_ doubles as the BFS frontier: every link appended past
  // `head` still needs its occupants expanded.
  for (std::size_t head = 0; head < comp_links_.size(); ++head) {
    const auto li = static_cast<std::size_t>(comp_links_[head]);
    for (const LinkRef& ref : link_entities_[li]) {
      const auto si = static_cast<std::size_t>(ref.slot);
      if (entity_visit_[si] == visit_stamp_) continue;
      entity_visit_[si] = visit_stamp_;
      comp_entities_.push_back(ref.slot);
      for (LinkId l : *entities_[si].path) visit_link(l);
    }
  }
}

void Network::reallocate() {
  if (batch_depth_ > 0) {
    batch_dirty_ = true;
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  ++alloc_stats_.reallocations;

  collect_component(dirty_links_, dirty_entities_);
  dirty_links_.clear();
  dirty_entities_.clear();

  // Links leaving/entering contention are re-derived from scratch below;
  // untouched links keep their standing allocations (their flows' rates
  // are provably unchanged).
  for (LinkId l : comp_links_) link_allocated_[static_cast<std::size_t>(l)] = 0.0;

  const auto touched = static_cast<std::int64_t>(comp_entities_.size());
  alloc_stats_.flows_touched += touched;
  alloc_stats_.links_touched += static_cast<std::int64_t>(comp_links_.size());
  alloc_stats_.last_flows_touched = touched;
  alloc_stats_.last_links_touched = static_cast<std::int64_t>(comp_links_.size());
  alloc_stats_.max_component_flows = std::max(alloc_stats_.max_component_flows, touched);
  if (touched == active_entity_count_ && touched > 0) ++alloc_stats_.full_reallocations;

  if (!comp_entities_.empty()) {
    // Settle at pre-change rates before repricing; flows outside the
    // component keep their rates, so their accounting stays linear and can
    // settle lazily.
    refs_.clear();
    refs_.reserve(comp_entities_.size());
    for (int slot : comp_entities_) {
      Entity& e = entities_[static_cast<std::size_t>(slot)];
      if (e.channel != nullptr) {
        settle_channel(*e.channel);
      } else {
        settle_stream(*e.stream);
      }
      refs_.push_back({e.demand, e.path});
    }

    const std::vector<double>* rates;
    std::vector<double> proportional;
    if (config_.fairness == FairnessPolicy::kProportional) {
      proportional = proportional_allocate_refs(capacities_, refs_);
      rates = &proportional;
    } else {
      rates = &solver_.solve(capacities_, refs_);
    }

    for (std::size_t i = 0; i < comp_entities_.size(); ++i) {
      Entity& e = entities_[static_cast<std::size_t>(comp_entities_[i])];
      const double rate = (*rates)[i];
      for (LinkId l : *e.path) link_allocated_[static_cast<std::size_t>(l)] += rate;
      if (e.channel != nullptr) {
        e.channel->rate_bps = rate;
        schedule_head_event(e.key);
      } else {
        e.stream->rate_bps = rate;
      }
    }
  }

  const double pass_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  alloc_stats_.alloc_seconds += pass_seconds;

  if (recorder_ != nullptr) {
    m_reallocations_->inc();
    m_flows_touched_->add(touched);
    m_links_touched_->add(static_cast<std::int64_t>(comp_links_.size()));
    const bool full = touched == active_entity_count_ && touched > 0;
    if (full) m_full_reallocations_->inc();
    m_alloc_pass_us_->observe(pass_seconds * 1e6);
    obs::ReallocationSolved solved;
    solved.at = sim_->now();
    solved.flows = touched;
    solved.links = static_cast<std::int64_t>(comp_links_.size());
    solved.full = full;
    solved.span = recorder_->new_span();
    solved.parent = recorder_->current_span();
    recorder_->record(solved);
  }
}

void Network::schedule_head_event(std::int64_t key) {
  Channel& ch = channels_.at(key);
  if (ch.head_event != sim::kInvalidEvent) {
    sim_->cancel(ch.head_event);
    ch.head_event = sim::kInvalidEvent;
  }
  if (ch.fifo.empty()) return;
  const sim::Duration drain = drain_micros(ch.fifo.front().bytes_remaining, ch.rate_bps);
  if (drain < 0) return;  // stalled: wait for a rate change
  ch.head_event = sim_->schedule_after(drain, [this, key] { complete_head(key); });
}

void Network::complete_head(std::int64_t key) {
  Channel& ch = channels_.at(key);
  ch.head_event = sim::kInvalidEvent;
  settle_channel(ch);
  assert(!ch.fifo.empty());
  Transfer head = std::move(ch.fifo.front());
  ch.fifo.pop_front();
  transfer_channel_.erase(head.id);
  // Account any residue lost to event rounding.
  if (head.bytes_remaining > 0.0) account_bytes(head.tag, head.bytes_remaining);

  if (ch.fifo.empty()) {
    remove_entity(ch.entity_slot);
    ch.entity_slot = -1;
    reallocate();
  } else {
    schedule_head_event(key);
  }

  // Delivery completes after propagation over the path's hops.
  const sim::Duration hop_delay =
      config_.per_hop_latency * routing_.hops(ch.src, ch.dst);
  if (head.done) {
    sim_->schedule_after(hop_delay, [done = std::move(head.done)] { done(); });
  }
}

}  // namespace bass::net
