// Mesh routing with deterministic tie-breaking. The paper assumes routing
// is decentralized and out of the orchestrator's control (§1, §3.1); BASS
// only *observes* paths (via traceroute) and must work with whatever the
// mesh runs. Two steady-state models are provided:
//
//  * kMinHop — shortest path by hop count (802.11s default metric's shape);
//  * kWidestPath — maximize the bottleneck capacity along the path, ties
//    broken by fewer hops (the shape of link-quality metrics like
//    BATMAN/OLSR-ETX, which route around weak links).
//
// Routes are computed against the capacities at recompute() time and held
// stable — real mesh protocols damp route flapping, and the paper's BASS
// explicitly does not chase routing dynamics.
#pragma once

#include <vector>

#include "net/topology.h"
#include "net/types.h"

namespace bass::net {

enum class RoutingPolicy { kMinHop, kWidestPath };

class RoutingTable {
 public:
  explicit RoutingTable(const Topology& topo,
                        RoutingPolicy policy = RoutingPolicy::kMinHop)
      : topo_(&topo), policy_(policy) {
    recompute();
  }

  RoutingPolicy policy() const { return policy_; }

  // Rebuilds all routes (call if the topology gained nodes/links, or to
  // re-evaluate widest paths against current capacities).
  void recompute();

  // Directed links traversed from src to dst; empty when src == dst.
  // The path is precomputed and stable — our "traceroute". The returned
  // vector lives until the next recompute(), so callers (Network's entity
  // cache, the allocator) may hold pointers to it instead of copying.
  const std::vector<LinkId>& path(NodeId src, NodeId dst) const;

  // Pointer form of path() for long-lived references (see above for the
  // lifetime guarantee).
  const std::vector<LinkId>* path_ptr(NodeId src, NodeId dst) const {
    return &path(src, dst);
  }

  // Number of hops from src to dst (0 when colocated).
  int hops(NodeId src, NodeId dst) const {
    return static_cast<int>(path(src, dst).size());
  }

  bool reachable(NodeId src, NodeId dst) const;

 private:
  void recompute_min_hop();
  void recompute_widest();

  const Topology* topo_;
  RoutingPolicy policy_;
  // paths_[src * n + dst]
  std::vector<std::vector<LinkId>> paths_;
  std::vector<bool> reachable_;
};

}  // namespace bass::net
