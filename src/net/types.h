// Shared identifier and unit types for the network substrate.
#pragma once

#include <cstdint>

namespace bass::net {

using NodeId = std::int32_t;
using LinkId = std::int32_t;  // index of a *directed* link
using Bps = std::int64_t;     // bits per second

constexpr NodeId kInvalidNode = -1;
constexpr LinkId kInvalidLink = -1;

// Sentinel for "as much as the network will give" (used by probe flows and
// backlogged transfer channels). Large but finite so arithmetic stays safe.
constexpr Bps kUnlimitedRate = 1'000'000'000'000'000LL;  // 1 Pbps

constexpr Bps kbps(std::int64_t n) { return n * 1'000; }
constexpr Bps mbps(std::int64_t n) { return n * 1'000'000; }
constexpr Bps gbps(std::int64_t n) { return n * 1'000'000'000; }

}  // namespace bass::net
