// Flow-level network simulator. Two traffic primitives:
//
//  * Transfer — a finite byte payload between two nodes (an RPC message, a
//    video frame). Transfers between the same node pair share a FIFO
//    "channel" served at the channel's max-min fair rate, which gives
//    natural queueing behaviour when links saturate.
//  * Stream — a constant-demand flow (a video feed, a probe). Its delivered
//    rate is its max-min allocation; shortfall against demand models loss.
//
// Rates are recomputed only when the set of contending flows or a link
// capacity changes — completions inside a busy channel don't perturb the
// allocation, which keeps event counts tractable for long workloads.
//
// Allocation fast path: the Network maintains a persistent cache of
// allocation entities (one per active channel / demanding mesh stream) with
// per-link occupancy lists. A change dirties the links/flows it touches and
// reallocation reprices only the contention component reachable from the
// dirty set — flows that share no link (transitively) with the change keep
// their rates, which is exact because max-min allocations of disjoint
// components are independent. See DESIGN.md "Flow allocation fast path".
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/maxmin.h"
#include "net/routing.h"
#include "net/topology.h"
#include "net/types.h"
#include "obs/recorder.h"
#include "sim/simulation.h"

namespace bass::net {

using TransferId = std::int64_t;
using StreamId = std::int64_t;
using Tag = std::uint64_t;  // caller-defined traffic class for byte counters

enum class FairnessPolicy {
  kMaxMin,        // TCP-like convergence (default; what the paper's testbed ran)
  kProportional,  // ablation: demands scaled by worst path oversubscription
};

struct NetworkConfig {
  // One-way propagation/processing latency added per traversed link.
  sim::Duration per_hop_latency = sim::millis(1);
  // Colocated (same-node) transfers bypass the mesh entirely.
  Bps loopback_bps = gbps(10);
  sim::Duration loopback_latency = sim::micros(100);
  FairnessPolicy fairness = FairnessPolicy::kMaxMin;
  // The mesh's routing protocol behaviour (see net/routing.h).
  RoutingPolicy routing = RoutingPolicy::kMinHop;
};

// Allocator observability (cumulative unless noted). `reallocations` counts
// allocator passes; `flows_touched` counts entity repricings summed over
// passes, so flows_touched / reallocations is the mean contention-component
// size the engine actually paid for.
struct AllocStats {
  std::int64_t reallocations = 0;
  // Passes whose component covered every active entity.
  std::int64_t full_reallocations = 0;
  std::int64_t flows_touched = 0;
  std::int64_t links_touched = 0;
  std::int64_t last_flows_touched = 0;   // most recent pass only
  std::int64_t last_links_touched = 0;   // most recent pass only
  std::int64_t max_component_flows = 0;  // largest component ever repriced
  double alloc_seconds = 0.0;            // wall time inside collect+solve+apply
};

class Network {
 public:
  Network(sim::Simulation& sim, Topology topology, NetworkConfig config = {});
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const Topology& topology() const { return topology_; }
  const RoutingTable& routing() const { return routing_; }
  sim::Simulation& simulation() { return *sim_; }
  const NetworkConfig& config() const { return config_; }

  // One-way propagation latency along the routed path (0 when colocated).
  sim::Duration path_latency(NodeId src, NodeId dst) const {
    return config_.per_hop_latency * routing_.hops(src, dst);
  }

  // ---- Capacity control (driven by the trace player / experiments) ----
  // While a link is forced down (fault injection) the new capacity is only
  // remembered as the nominal value, so trace playback layered on top keeps
  // updating and the latest trace value takes effect on link_up.
  void set_link_capacity(LinkId link, Bps capacity);
  // Convenience: sets both directions of the (a,b) link.
  void set_link_capacity_between(NodeId a, NodeId b, Bps capacity);
  Bps link_capacity(LinkId link) const { return topology_.link(link).capacity; }

  // ---- Fault overlay ----
  // Forces a link's effective capacity to zero (down) or restores the
  // nominal capacity (up). Orthogonal to set_link_capacity: the overlay
  // shadows capacity writes instead of discarding them.
  void set_link_down(LinkId link, bool down);
  // Both directions of the (a,b) link.
  void set_link_down_between(NodeId a, NodeId b, bool down);
  bool link_is_down(LinkId link) const {
    return link_down_[static_cast<std::size_t>(link)] != 0;
  }
  // Current sum of flow rates crossing the link (refreshed on reallocation).
  Bps link_allocated(LinkId link) const;

  // Batch capacity updates: settling and reallocation are deferred until
  // the guard dies, so a trace tick that touches L links settles and
  // reprices once, not L times.
  class BatchUpdate {
   public:
    explicit BatchUpdate(Network& net);
    ~BatchUpdate();
    BatchUpdate(const BatchUpdate&) = delete;
    BatchUpdate& operator=(const BatchUpdate&) = delete;

   private:
    Network& net_;
  };

  // ---- Transfers ----
  using TransferCallback = std::function<void()>;
  // Moves `bytes` from src to dst; `done` fires when the last byte lands
  // (drain time + per-hop latency). Returns an id usable with cancel().
  TransferId start_transfer(NodeId src, NodeId dst, std::int64_t bytes,
                            TransferCallback done, Tag tag = 0);
  // Cancels a queued/in-flight transfer. False if it already completed.
  bool cancel_transfer(TransferId id);

  // ---- Streams ----
  // StreamIds are generation-tagged slot handles ((generation << 32) |
  // slot): closed ids go stale instead of dangling, so a stale id reads
  // rate 0, set_stream_demand is a no-op, and double-close is safe. Slots
  // are free-listed, so steady-state stream churn reuses storage instead of
  // allocating.
  StreamId open_stream(NodeId src, NodeId dst, Bps demand, Tag tag = 0);
  void set_stream_demand(StreamId id, Bps demand);
  void close_stream(StreamId id);
  // Current allocated rate; 0 for unknown/closed streams.
  Bps stream_rate(StreamId id) const;

  // ---- Observability ----
  // Attaches the run's recorder: every allocator pass journals a
  // ReallocationSolved event, capacity changes journal LinkCapacityChanged,
  // and the AllocStats counters are mirrored into the metrics registry
  // (net.reallocations, net.flows_touched, ..., net.alloc_pass_us).
  // Instrument handles are resolved once here, so the hot path only pays
  // pointer increments. Pass nullptr to detach.
  void set_recorder(obs::Recorder* recorder);

  // Bottleneck *raw* capacity along the routed path (ignores contention).
  Bps path_capacity(NodeId src, NodeId dst) const;
  // Rate a hypothetical new unbounded flow would receive on the path right
  // now — the ground truth a flood probe estimates. Solves only the
  // phantom flow's contention component against the entity cache.
  Bps path_available(NodeId src, NodeId dst) const;

  // Delivered bytes for a tag since the last take (settles flows first).
  std::int64_t take_tag_bytes(Tag tag);
  // Delivered bytes for a tag since the start of the simulation.
  std::int64_t total_tag_bytes(Tag tag);

  std::int64_t total_bytes_delivered() const { return total_bytes_delivered_; }
  std::int64_t reallocation_count() const { return alloc_stats_.reallocations; }
  const AllocStats& alloc_stats() const { return alloc_stats_; }
  std::size_t active_channel_count() const {
    return static_cast<std::size_t>(active_channel_entities_);
  }
  std::size_t stream_count() const { return open_streams_; }

 private:
  struct Transfer {
    TransferId id = 0;
    double bytes_remaining = 0.0;
    std::int64_t bytes_total = 0;
    TransferCallback done;
    Tag tag = 0;
  };

  struct Channel {
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    std::deque<Transfer> fifo;
    double rate_bps = 0.0;
    sim::Time last_update = 0;
    sim::EventId head_event = sim::kInvalidEvent;
    int entity_slot = -1;  // slot in entities_ while backlogged, else -1
  };

  struct Stream {
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    Bps demand = 0;
    double rate_bps = 0.0;
    sim::Time last_update = 0;
    Tag tag = 0;
    double byte_carry = 0.0;  // fractional bytes pending accounting
    int entity_slot = -1;  // slot in entities_ while a demanding mesh flow
  };

  // One allocation entity: an active (backlogged) channel or a demanding
  // mesh stream. Slots are stable (free-listed), so per-link occupancy
  // lists and dirty sets can hold slot indices across churn.
  struct Entity {
    double demand = 0.0;
    const std::vector<LinkId>* path = nullptr;  // owned by routing_
    Channel* channel = nullptr;  // exactly one of channel/stream is set
    Stream* stream = nullptr;
    std::int64_t key = 0;  // channel key (head-event scheduling)
    bool active = false;
  };
  struct LinkRef {
    int slot = 0;
    std::uint32_t path_idx = 0;  // index of this link within the slot's path
  };

  std::int64_t channel_key(NodeId src, NodeId dst) const {
    return (static_cast<std::int64_t>(src) << 32) | static_cast<std::uint32_t>(dst);
  }

  Channel& channel_for(NodeId src, NodeId dst);
  // Advances a flow's byte accounting to `now` at its current rate.
  void settle_channel(Channel& ch);
  void settle_stream(Stream& st);
  void settle_all();

  // Entity cache maintenance. Adding marks the entity dirty; removing
  // marks its links dirty, so the next reallocate() reprices exactly the
  // affected contention component.
  int add_entity(double demand, const std::vector<LinkId>* path, Channel* ch,
                 Stream* st, std::int64_t key);
  void remove_entity(int slot);

  // Flood-fills links ↔ entities from the dirty seeds into comp_links_ /
  // comp_entities_ (every flow on an included link is included, so the
  // result is closed under link sharing).
  void collect_component(const std::vector<LinkId>& seed_links,
                         const std::vector<int>& seed_entities) const;
  // Settles and reprices the dirty contention component(s), then
  // reschedules head events for repriced channels.
  void reallocate();
  void schedule_head_event(std::int64_t key);
  void complete_head(std::int64_t key);
  void account_bytes(Tag tag, double bytes);

  sim::Simulation* sim_;
  Topology topology_;
  RoutingTable routing_;
  NetworkConfig config_;

  // Stream storage. A deque gives pointer stability (Entity::stream points
  // into a slot) without per-stream allocations; closed slots are
  // free-listed and their generation bumped, so stale StreamIds miss in
  // O(1). A slot's generation wraps after 2^32 closes — accepted: an id
  // would have to be held across four billion reuses of its slot to alias.
  struct StreamSlot {
    Stream stream;
    std::uint32_t generation = 1;
    bool open = false;
  };
  static std::uint32_t stream_slot_of(StreamId id) {
    return static_cast<std::uint32_t>(id);
  }
  Stream* find_stream(StreamId id);
  const Stream* find_stream(StreamId id) const;

  std::unordered_map<std::int64_t, Channel> channels_;  // keyed by (src,dst)
  std::deque<StreamSlot> stream_slots_;
  std::vector<std::uint32_t> stream_free_;
  std::size_t open_streams_ = 0;
  std::unordered_map<TransferId, std::int64_t> transfer_channel_;  // id -> key

  // ---- Entity cache ----
  std::vector<Entity> entities_;
  std::vector<int> free_slots_;
  std::vector<std::vector<LinkRef>> link_entities_;  // per-link active slots
  // link_pos(slot)[i] is the slot's index within link_entities_[(*path)[i]],
  // making detach an O(path) swap-remove instead of a list scan. Stored as
  // one flat pool strided by the longest routed path (routing is fixed at
  // construction), so entity-slot reuse never resizes anything — a reused
  // slot with a longer path was the last steady-state allocation in the
  // churn loop.
  std::vector<std::uint32_t> link_pos_pool_;
  std::size_t link_pos_stride_ = 1;
  std::uint32_t* link_pos(int slot) {
    return link_pos_pool_.data() +
           static_cast<std::size_t>(slot) * link_pos_stride_;
  }
  int active_entity_count_ = 0;
  int active_channel_entities_ = 0;

  // Dirty seeds accumulated since the last allocator pass (deduplicated by
  // the component walk, so plain vectors suffice).
  std::vector<LinkId> dirty_links_;
  std::vector<int> dirty_entities_;

  // Component-walk + solver scratch. Mutable because path_available() is
  // logically const but reuses the same buffers.
  mutable MaxMinSolver solver_;
  mutable std::vector<AllocEntityRef> refs_;
  mutable std::vector<int> comp_entities_;
  mutable std::vector<LinkId> comp_links_;
  mutable std::vector<std::uint32_t> link_visit_;
  mutable std::vector<std::uint32_t> entity_visit_;
  mutable std::uint32_t visit_stamp_ = 0;

  // Applies an effective-capacity change (journal + topology + mirror +
  // dirty seed + reallocate); set_link_capacity/set_link_down route here.
  void apply_capacity(LinkId link, Bps capacity);

  std::vector<double> capacities_;  // mirror of topology capacities
  std::vector<double> link_allocated_;
  std::vector<Bps> nominal_capacity_;     // capacity a downed link returns to
  std::vector<std::uint8_t> link_down_;   // fault overlay flags
  std::unordered_map<Tag, double> tag_bytes_window_;
  std::unordered_map<Tag, double> tag_bytes_total_;

  // Observability (all null until set_recorder; see emit sites).
  obs::Recorder* recorder_ = nullptr;
  obs::Counter* m_reallocations_ = nullptr;
  obs::Counter* m_full_reallocations_ = nullptr;
  obs::Counter* m_flows_touched_ = nullptr;
  obs::Counter* m_links_touched_ = nullptr;
  obs::LogHistogram* m_alloc_pass_us_ = nullptr;

  TransferId next_transfer_ = 1;
  std::int64_t total_bytes_delivered_ = 0;
  AllocStats alloc_stats_;
  int batch_depth_ = 0;
  bool batch_dirty_ = false;
};

}  // namespace bass::net
