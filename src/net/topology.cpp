#include "net/topology.h"

#include <cassert>

namespace bass::net {

namespace {
std::int64_t endpoint_key(NodeId a, NodeId b) {
  return (static_cast<std::int64_t>(a) << 32) | static_cast<std::uint32_t>(b);
}
}  // namespace

NodeId Topology::add_node(std::string name) {
  const NodeId id = static_cast<NodeId>(node_names_.size());
  if (name.empty()) name = "node" + std::to_string(id);
  node_names_.push_back(std::move(name));
  out_links_.emplace_back();
  return id;
}

std::pair<LinkId, LinkId> Topology::add_link(NodeId a, NodeId b, Bps capacity_ab,
                                             Bps capacity_ba) {
  assert(a != b && a >= 0 && b >= 0 && a < node_count() && b < node_count());
  assert(!link_between(a, b).has_value() && "duplicate link");
  const LinkId ab = static_cast<LinkId>(links_.size());
  links_.push_back({a, b, capacity_ab});
  out_links_[a].push_back(ab);
  by_endpoints_[endpoint_key(a, b)] = ab;
  const LinkId ba = static_cast<LinkId>(links_.size());
  links_.push_back({b, a, capacity_ba});
  out_links_[b].push_back(ba);
  by_endpoints_[endpoint_key(b, a)] = ba;
  return {ab, ba};
}

std::optional<LinkId> Topology::link_between(NodeId a, NodeId b) const {
  const auto it = by_endpoints_.find(endpoint_key(a, b));
  if (it == by_endpoints_.end()) return std::nullopt;
  return it->second;
}

Bps Topology::total_out_capacity(NodeId n) const {
  Bps total = 0;
  for (LinkId l : out_links_.at(n)) total += links_[l].capacity;
  return total;
}

}  // namespace bass::net
