// Static mesh shape: named nodes and directed links with capacities.
// Capacities are mutable (that is the whole point of this paper); the set of
// nodes and links is fixed once built.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/types.h"

namespace bass::net {

struct Link {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Bps capacity = 0;
};

class Topology {
 public:
  NodeId add_node(std::string name = {});

  // Adds a bidirectional link as two directed links. Returns {a->b, b->a}.
  std::pair<LinkId, LinkId> add_link(NodeId a, NodeId b, Bps capacity_ab, Bps capacity_ba);
  std::pair<LinkId, LinkId> add_link(NodeId a, NodeId b, Bps capacity) {
    return add_link(a, b, capacity, capacity);
  }

  int node_count() const { return static_cast<int>(node_names_.size()); }
  int link_count() const { return static_cast<int>(links_.size()); }

  const std::string& node_name(NodeId n) const { return node_names_.at(n); }
  const Link& link(LinkId l) const { return links_.at(l); }
  const std::vector<Link>& links() const { return links_; }

  void set_capacity(LinkId l, Bps capacity) { links_.at(l).capacity = capacity; }

  // Directed link from a to b, if the nodes are 1-hop neighbors.
  std::optional<LinkId> link_between(NodeId a, NodeId b) const;

  // Outgoing directed links of a node (for neighbor probing).
  const std::vector<LinkId>& out_links(NodeId n) const { return out_links_.at(n); }

  // Sum of outgoing link capacities — the "combined capacity across all of
  // the node's links" that BASS uses to rank nodes (§3.2.1).
  Bps total_out_capacity(NodeId n) const;

 private:
  std::vector<std::string> node_names_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_links_;
  std::unordered_map<std::int64_t, LinkId> by_endpoints_;  // (src<<32|dst) -> link
};

}  // namespace bass::net
