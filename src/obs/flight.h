// Flight recorder: when something goes wrong deep into a chaos soak, the
// operator needs the evidence trail, not just the failure message. This
// wraps a Recorder and, on demand — an invariant firing, a SIGABRT, an
// explicit dump — writes one self-contained `flight_<tag>.jsonl`: a header
// line with build info and the dump reason, the last N journal events, and
// a final metrics snapshot. The file needs nothing else from the run to be
// interpreted; `bassctl report` reads it like any journal.
//
// Dumping is pull-only: a FlightRecorder holds no copy of anything and
// costs nothing until dump() walks the live journal ring. The journal
// itself is already the bounded ring of recent events — the recorder just
// serializes its tail.
#pragma once

#include <cstddef>
#include <string>

#include "obs/recorder.h"

namespace bass::obs {

struct FlightConfig {
  // Journal tail length written to the dump.
  std::size_t last_events = 256;
  // Output directory (created files are `<directory>/flight_<tag>.jsonl`).
  std::string directory = ".";
  // Distinguishes dumps from parallel runs; chaos uses the per-run seed.
  std::string tag = "run";
};

// One-line JSON object with compiler/build facts, embedded in dump headers
// so a failure artifact says what produced it.
std::string build_info_json();

class FlightRecorder {
 public:
  FlightRecorder(Recorder& recorder, FlightConfig config);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  // Disarms the signal hook if this instance armed it.
  ~FlightRecorder();

  // Target dump path for this configuration.
  std::string path() const;

  // Writes the dump now; returns false on I/O failure. `why` lands in the
  // header line ("invariant_violation", "sigabrt", ...).
  bool dump(const char* why);

  // First call dumps, later calls no-op — the natural mode for invariant
  // hooks, where the first violation is the interesting one and a cascade
  // of follow-ups must not overwrite its evidence.
  bool dump_once(const char* why);

  bool dumped() const { return dumped_; }

  // Installs a process-wide SIGABRT handler that dumps through this
  // instance before re-raising. Best-effort by design: the handler
  // allocates, which is formally outside async-signal-safety — acceptable
  // for a crash path whose alternative is no evidence at all. Only one
  // instance can be armed at a time; arming replaces the previous one.
  void arm_signal_hook();

 private:
  Recorder& recorder_;
  FlightConfig config_;
  bool dumped_ = false;
  bool armed_ = false;
};

}  // namespace bass::obs
