#include "obs/events.h"

#include "util/strings.h"

namespace bass::obs {

namespace {

// Minimal JSON string escaping — event strings are scheduler names and the
// like, but a scenario could name things creatively.
void append_escaped(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::str_format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

struct TimeVisitor {
  template <typename T>
  sim::Time operator()(const T& e) const { return e.at; }
};

struct SpanVisitor {
  template <typename T>
  SpanId operator()(const T& e) const { return e.span; }
};

struct ParentVisitor {
  template <typename T>
  SpanId operator()(const T& e) const { return e.parent; }
};

struct NameVisitor {
  const char* operator()(const ScheduleDecision&) const { return "schedule_decision"; }
  const char* operator()(const ProbeCompleted&) const { return "probe_completed"; }
  const char* operator()(const HeadroomViolation&) const { return "headroom_violation"; }
  const char* operator()(const MigrationStarted&) const { return "migration_started"; }
  const char* operator()(const MigrationCompleted&) const { return "migration_completed"; }
  const char* operator()(const ControllerRound&) const { return "controller_round"; }
  const char* operator()(const ReallocationSolved&) const { return "reallocation_solved"; }
  const char* operator()(const LinkCapacityChanged&) const { return "link_capacity_changed"; }
  const char* operator()(const FaultInjected&) const { return "fault_injected"; }
  const char* operator()(const InvariantViolation&) const { return "invariant_violation"; }
  const char* operator()(const DeploymentClosed&) const { return "deployment_closed"; }
  const char* operator()(const AdmissionOutcome&) const { return "admission_outcome"; }
  const char* operator()(const OrchestratorWarning&) const { return "orchestrator_warning"; }
  const char* operator()(const ZoneRound&) const { return "zone_round"; }
};

struct JsonVisitor {
  std::string& out;

  void operator()(const ScheduleDecision& e) const {
    // place_us is wall clock and deliberately NOT serialized: the journal
    // must be byte-identical across repeated runs of the same seed. The
    // measurement is still available via the sched.place_us metrics timer.
    out += util::str_format(",\"deployment\":%d,\"scheduler\":", e.deployment);
    append_escaped(e.scheduler, out);
    out += util::str_format(
        ",\"components\":%d,\"crossing_bps\":%lld,\"success\":%s",
        e.components, static_cast<long long>(e.crossing_bps),
        e.success ? "true" : "false");
  }
  void operator()(const ProbeCompleted& e) const {
    out += util::str_format(
        ",\"link\":%d,\"full\":%s,\"offered_bps\":%lld,\"measured_bps\":%lld,"
        "\"bytes\":%lld",
        e.link, e.full ? "true" : "false", static_cast<long long>(e.offered_bps),
        static_cast<long long>(e.measured_bps), static_cast<long long>(e.bytes));
  }
  void operator()(const HeadroomViolation& e) const {
    out += util::str_format(",\"link\":%d,\"delivered_bps\":%lld", e.link,
                            static_cast<long long>(e.delivered_bps));
  }
  void operator()(const MigrationStarted& e) const {
    out += util::str_format(
        ",\"deployment\":%d,\"component\":%d,\"from\":%d,\"to\":%d,"
        "\"reason\":\"%s\"",
        e.deployment, e.component, e.from, e.to, e.reason);
  }
  void operator()(const MigrationCompleted& e) const {
    out += util::str_format(
        ",\"deployment\":%d,\"component\":%d,\"from\":%d,\"to\":%d,"
        "\"downtime_us\":%lld,\"reason\":\"%s\"",
        e.deployment, e.component, e.from, e.to,
        static_cast<long long>(e.downtime), e.reason);
  }
  void operator()(const ControllerRound& e) const {
    out += util::str_format(
        ",\"deployment\":%d,\"violating\":%d,\"migrations_started\":%d",
        e.deployment, e.violating, e.migrations_started);
  }
  void operator()(const ReallocationSolved& e) const {
    out += util::str_format(",\"flows\":%lld,\"links\":%lld,\"full\":%s",
                            static_cast<long long>(e.flows),
                            static_cast<long long>(e.links),
                            e.full ? "true" : "false");
  }
  void operator()(const LinkCapacityChanged& e) const {
    out += util::str_format(",\"link\":%d,\"old_bps\":%lld,\"new_bps\":%lld",
                            e.link, static_cast<long long>(e.old_bps),
                            static_cast<long long>(e.new_bps));
  }
  void operator()(const FaultInjected& e) const {
    out += util::str_format(",\"kind\":\"%s\",\"node\":%d,\"peer\":%d,\"value\":%g",
                            e.kind, e.node, e.peer, e.value);
  }
  void operator()(const InvariantViolation& e) const {
    out += util::str_format(",\"name\":\"%s\",\"detail\":", e.name);
    append_escaped(e.detail, out);
  }
  void operator()(const DeploymentClosed& e) const {
    out += util::str_format(
        ",\"deployment\":%d,\"components\":%d,\"lifetime_us\":%lld",
        e.deployment, e.components, static_cast<long long>(e.lifetime));
  }
  void operator()(const AdmissionOutcome& e) const {
    out += util::str_format(
        ",\"instance\":%d,\"deployment\":%d,\"action\":\"%s\","
        "\"queue_depth\":%d,\"wait_us\":%lld",
        e.instance, e.deployment, e.action, e.queue_depth,
        static_cast<long long>(e.wait));
  }
  void operator()(const OrchestratorWarning& e) const {
    out += util::str_format(",\"what\":\"%s\",\"deployment\":%d,\"node\":%d",
                            e.what, e.deployment, e.node);
  }
  void operator()(const ZoneRound& e) const {
    // No wall-clock field on purpose: round wall time goes to the
    // zone.round_wall_us metric, keeping same-seed journals byte-identical.
    out += util::str_format(
        ",\"zone\":%d,\"round\":%d,\"flows\":%d,\"border_streams\":%d,"
        "\"recon_iterations\":%d",
        e.zone, e.round, e.flows, e.border_streams, e.recon_iterations);
  }
};

}  // namespace

sim::Time event_time(const Event& event) {
  return std::visit(TimeVisitor{}, event);
}

const char* event_type_name(const Event& event) {
  return std::visit(NameVisitor{}, event);
}

SpanId event_span(const Event& event) {
  return std::visit(SpanVisitor{}, event);
}

SpanId event_parent(const Event& event) {
  return std::visit(ParentVisitor{}, event);
}

void append_jsonl(const Event& event, std::string& out) {
  // span/parent are serialized centrally — every line carries them, so the
  // schema check and `bassctl journal query --span` never need per-type
  // knowledge. Deterministic counters keep same-seed journals byte-equal.
  out += util::str_format("{\"t_us\":%lld,\"type\":\"%s\",\"span\":%llu,"
                          "\"parent\":%llu",
                          static_cast<long long>(event_time(event)),
                          event_type_name(event),
                          static_cast<unsigned long long>(event_span(event)),
                          static_cast<unsigned long long>(event_parent(event)));
  std::visit(JsonVisitor{out}, event);
  out += '}';
}

}  // namespace bass::obs
