#include "obs/recorder.h"

namespace bass::obs {

namespace {

Recorder* g_recorder = nullptr;

}  // namespace

Recorder::Recorder(RecorderConfig config)
    : enabled_(config.enabled), journal_(config.journal_capacity) {
  // One counter per variant alternative, so record() indexes instead of
  // hashing. Instantiate each alternative to name its counter.
  const Event samples[] = {
      ScheduleDecision{}, ProbeCompleted{},     HeadroomViolation{},
      MigrationStarted{}, MigrationCompleted{}, ControllerRound{},
      ReallocationSolved{}, LinkCapacityChanged{}, FaultInjected{},
      InvariantViolation{},
  };
  static_assert(std::variant_size_v<Event> == sizeof(samples) / sizeof(samples[0]),
                "register a counter sample for every event alternative");
  type_counters_.resize(std::variant_size_v<Event>, nullptr);
  for (const Event& e : samples) {
    type_counters_[e.index()] =
        &metrics_.counter(std::string("events.") + event_type_name(e));
  }
}

void Recorder::record(Event event) {
  if (!enabled_) return;
  type_counters_[event.index()]->inc();
  journal_.record(std::move(event));
}

Recorder* global_recorder() { return g_recorder; }

void set_global_recorder(Recorder* recorder) { g_recorder = recorder; }

}  // namespace bass::obs
