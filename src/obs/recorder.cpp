#include "obs/recorder.h"

#include <atomic>

namespace bass::obs {

namespace {

// Thread-local slot, checked first. Each sweep worker installs the run's
// recorder here (exec::run_sweep does this via ScopedGlobalRecorder), so
// kernels profiled through BASS_OBS_SCOPE attribute timings to the run
// executing on this thread — concurrent runs cannot cross-contaminate.
thread_local Recorder* t_recorder = nullptr;

// Process-wide fallback for single-threaded harnesses that install one
// recorder up front. Atomic so an install can never tear against a reader
// on another thread; the ownership rule (recorder.h) is to install it
// before spawning workers, so relaxed ordering suffices.
std::atomic<Recorder*> g_default_recorder{nullptr};

}  // namespace

Recorder::Recorder(RecorderConfig config)
    : enabled_(config.enabled),
      journal_(config.journal_capacity),
      deferred_(config.deferred_capacity) {
  // One counter per variant alternative, so record() indexes instead of
  // hashing. Instantiate each alternative to name its counter.
  const Event samples[] = {
      ScheduleDecision{}, ProbeCompleted{},     HeadroomViolation{},
      MigrationStarted{}, MigrationCompleted{}, ControllerRound{},
      ReallocationSolved{}, LinkCapacityChanged{}, FaultInjected{},
      InvariantViolation{}, DeploymentClosed{},    AdmissionOutcome{},
      OrchestratorWarning{},  ZoneRound{},
  };
  static_assert(std::variant_size_v<Event> == sizeof(samples) / sizeof(samples[0]),
                "register a counter sample for every event alternative");
  type_counters_.resize(std::variant_size_v<Event>, nullptr);
  for (const Event& e : samples) {
    type_counters_[e.index()] =
        &metrics_.counter(std::string("events.") + event_type_name(e));
  }
  m_flush_us_ = &metrics_.log_timer_us("obs.journal_flush_us");
  span_stack_.reserve(8);
}

void Recorder::flush_deferred() {
  if (deferred_count_ == 0) return;
  // Time the stall: a flush re-encodes up to a ring's worth of variants on
  // whatever path happened to trigger it, and that cost should be visible
  // next to the decision latencies it can pollute.
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < deferred_count_; ++i) {
    emit_slot(deferred_[i], std::make_index_sequence<std::variant_size_v<Event>>{});
  }
  deferred_count_ = 0;
  const auto elapsed = std::chrono::steady_clock::now() - start;
  m_flush_us_->observe(
      std::chrono::duration<double, std::micro>(elapsed).count());
}

Recorder* global_recorder() {
  Recorder* r = t_recorder;
  return r != nullptr ? r : g_default_recorder.load(std::memory_order_relaxed);
}

Recorder* set_global_recorder(Recorder* recorder) {
  Recorder* prev = t_recorder;
  t_recorder = recorder;
  return prev;
}

void set_default_global_recorder(Recorder* recorder) {
  g_default_recorder.store(recorder, std::memory_order_relaxed);
}

}  // namespace bass::obs
