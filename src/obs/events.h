// The event taxonomy of the observability layer: every decision the
// orchestration stack takes — and every measurement that fed it — becomes
// one typed record carrying its sim-time timestamp and the entity ids
// involved. The journal stores these verbatim; exporters render them as
// JSON Lines (one flat object per line) or as Chrome/Perfetto trace_event
// entries, so a run can be grepped *and* scrubbed visually.
//
// Naming convention: events are past-tense facts ("MigrationCompleted"),
// never intentions. A new event type needs (1) a struct here, (2) a case in
// event_time/event_type_name/append_jsonl, and (3) a mapping in the trace
// exporter (journal.cpp) — the compiler's std::visit exhaustiveness check
// enforces the last two.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "net/types.h"
#include "sim/time.h"

namespace bass::obs {

// Causal span identity. A span is allocated from the owning Recorder's
// monotonic counter — never from wall clock — so same-seed runs assign the
// same ids and journals stay byte-identical. `span` names the event itself
// (when it can be a cause); `parent` names the span whose work produced it,
// forming chains like controller_round → migration_started →
// migration_completed. Zero means "no span": recording disabled, or the
// event happened outside any attributable scope.
using SpanId = std::uint64_t;
constexpr SpanId kNoSpan = 0;

// A scheduler produced (or failed to produce) a placement for a deployment.
struct ScheduleDecision {
  sim::Time at = 0;
  int deployment = -1;
  std::string scheduler;        // e.g. "bass-auto", "k3s-default"
  int components = 0;           // size of the app DAG placed
  net::Bps crossing_bps = 0;    // mesh-crossing bandwidth of the placement
  double place_us = 0.0;        // wall-clock placement latency (in-memory
                                // only; excluded from the JSONL journal so
                                // same-seed runs serialize byte-identically)
  bool success = false;
  SpanId span = kNoSpan;
  SpanId parent = kNoSpan;
};

// A net-monitor probe (full flood or headroom) finished on a directed link.
struct ProbeCompleted {
  sim::Time at = 0;
  net::LinkId link = net::kInvalidLink;
  bool full = false;            // true: max-capacity flood; false: headroom
  net::Bps offered_bps = 0;     // probe demand
  net::Bps measured_bps = 0;    // delivered goodput
  std::int64_t bytes = 0;       // probe bytes that crossed the mesh
  SpanId span = kNoSpan;
  SpanId parent = kNoSpan;
};

// A headroom probe came up short — the §4.2 trigger for the controller.
struct HeadroomViolation {
  sim::Time at = 0;
  net::LinkId link = net::kInvalidLink;
  net::Bps delivered_bps = 0;
  SpanId span = kNoSpan;
  SpanId parent = kNoSpan;
};

// A component went down for a move (restart outage begins). `reason` is a
// static move_reason_name() literal ("controller", "failover", ...).
struct MigrationStarted {
  sim::Time at = 0;
  int deployment = -1;
  int component = -1;
  net::NodeId from = net::kInvalidNode;
  net::NodeId to = net::kInvalidNode;  // requested target (may be revised)
  const char* reason = "";
  SpanId span = kNoSpan;
  SpanId parent = kNoSpan;
};

// The moved component came back up. `downtime` spans the whole outage
// (state transfer + restart), so the trace exporter can draw the move as a
// duration slice [at - downtime, at].
struct MigrationCompleted {
  sim::Time at = 0;
  int deployment = -1;
  int component = -1;
  net::NodeId from = net::kInvalidNode;
  net::NodeId to = net::kInvalidNode;  // where it actually landed
  sim::Duration downtime = 0;          // 0 when the outage start is unknown
  const char* reason = "";             // matches the MigrationStarted reason
  SpanId span = kNoSpan;
  SpanId parent = kNoSpan;
};

// One bandwidth-controller evaluation round that found work (Table 1 rows).
struct ControllerRound {
  sim::Time at = 0;
  int deployment = -1;
  int violating = 0;            // components exceeding their quota
  int migrations_started = 0;
  SpanId span = kNoSpan;
  SpanId parent = kNoSpan;
};

// The flow allocator repriced a contention component.
struct ReallocationSolved {
  sim::Time at = 0;
  std::int64_t flows = 0;       // entities repriced this pass
  std::int64_t links = 0;       // links in the component
  bool full = false;            // component covered every active entity
  SpanId span = kNoSpan;
  SpanId parent = kNoSpan;
};

// A link's raw capacity changed (trace tick, tc reshape, experiment).
struct LinkCapacityChanged {
  sim::Time at = 0;
  net::LinkId link = net::kInvalidLink;
  net::Bps old_bps = 0;
  net::Bps new_bps = 0;
  SpanId span = kNoSpan;
  SpanId parent = kNoSpan;
};

// The fault injector applied one action from its plan. `kind` is a static
// fault_kind_name() literal; `peer` is set for link faults, `value` carries
// the probe-loss rate (0 otherwise).
struct FaultInjected {
  sim::Time at = 0;
  const char* kind = "";
  net::NodeId node = net::kInvalidNode;
  net::NodeId peer = net::kInvalidNode;
  double value = 0.0;
  SpanId span = kNoSpan;
  SpanId parent = kNoSpan;
};

// The invariant checker caught a safety-property violation. `name` is a
// static invariant identifier; `detail` is human-readable context.
struct InvariantViolation {
  sim::Time at = 0;
  const char* name = "";
  std::string detail;
  SpanId span = kNoSpan;
  SpanId parent = kNoSpan;
};

// A deployment departed: its components went down, resources were released,
// and pending migrations were cancelled (Orchestrator::undeploy).
struct DeploymentClosed {
  sim::Time at = 0;
  int deployment = -1;
  int components = 0;           // components torn down (previously up)
  sim::Duration lifetime = 0;   // deploy -> undeploy sim-time span
  SpanId span = kNoSpan;
  SpanId parent = kNoSpan;
};

// The admission queue resolved one pending deploy request. `action` is a
// static literal ("admit", "reject", "defer"); `deployment` is set only on
// admit. POD by design (const char*, no std::string) so the recorder's
// deferred-encode ring can memcpy-stage it.
struct AdmissionOutcome {
  sim::Time at = 0;
  int instance = -1;            // workload-driver instance id
  int deployment = -1;          // admitted DeploymentId, -1 otherwise
  const char* action = "";
  int queue_depth = 0;          // queued requests after this outcome
  sim::Duration wait = 0;       // arrival -> outcome admission latency
  SpanId span = kNoSpan;
  SpanId parent = kNoSpan;
};

// The orchestrator rejected a nonsensical or duplicate request instead of
// silently double-applying state. `what` is a static literal
// ("node_already_failed", "duplicate_deployment", "undeploy_inactive", ...).
struct OrchestratorWarning {
  sim::Time at = 0;
  const char* what = "";
  int deployment = -1;
  net::NodeId node = net::kInvalidNode;
  SpanId span = kNoSpan;
  SpanId parent = kNoSpan;
};

// One sharded-orchestration zone round settled. The coordinator emits a
// summary record (zone = -1) whose span parents one record per zone, so the
// causal chain reads coordinator round → zone rounds. Timestamps and ids
// are sim-time/counter derived — no wall clock — so same-seed sharded runs
// stay byte-identical; the round's wall time lives in the metrics registry.
// POD by design so the deferred-encode ring can memcpy-stage it.
struct ZoneRound {
  sim::Time at = 0;
  int zone = -1;                // -1: coordinator summary over all zones
  int round = 0;
  int flows = 0;                // open streams in the zone at round end
  int border_streams = 0;       // transit stream halves touching the zone
  int recon_iterations = 0;     // reconciliation passes that changed a rate
  SpanId span = kNoSpan;
  SpanId parent = kNoSpan;
};

using Event = std::variant<ScheduleDecision, ProbeCompleted, HeadroomViolation,
                           MigrationStarted, MigrationCompleted, ControllerRound,
                           ReallocationSolved, LinkCapacityChanged, FaultInjected,
                           InvariantViolation, DeploymentClosed, AdmissionOutcome,
                           OrchestratorWarning, ZoneRound>;

// Sim-time timestamp of any event.
sim::Time event_time(const Event& event);

// Stable snake_case tag used in exports and `bassctl events --type` filters.
const char* event_type_name(const Event& event);

// Span identity / causal parent of any event (kNoSpan when unattributed).
SpanId event_span(const Event& event);
SpanId event_parent(const Event& event);

// Appends the event as one flat JSON object line (no trailing newline).
// Every line carries "t_us", "type", "span", and "parent"; remaining keys
// are per-type.
void append_jsonl(const Event& event, std::string& out);

}  // namespace bass::obs
