#include "obs/journal.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "util/strings.h"

namespace bass::obs {

namespace {

// Perfetto track (tid) per emitting subsystem, so decisions, probes, and
// allocator activity land on separate swim-lanes.
constexpr int kPid = 1;
constexpr int kTidScheduler = 1;
constexpr int kTidController = 2;
constexpr int kTidMonitor = 3;
constexpr int kTidNetwork = 4;
constexpr int kTidFault = 5;
constexpr int kTidZone = 6;

struct TraceShape {
  int tid = kTidNetwork;
  sim::Time ts = 0;        // slice start (== event time for instants)
  sim::Duration dur = -1;  // >= 0 => complete ("X") event, else instant
  std::string name;
};

struct TraceVisitor {
  TraceShape operator()(const ScheduleDecision& e) const {
    return {kTidScheduler, e.at, -1,
            util::str_format("schedule %s%s", e.scheduler.c_str(),
                             e.success ? "" : " FAILED")};
  }
  TraceShape operator()(const ProbeCompleted& e) const {
    return {kTidMonitor, e.at, -1,
            util::str_format("%s probe link%d", e.full ? "full" : "headroom",
                             e.link)};
  }
  TraceShape operator()(const HeadroomViolation& e) const {
    return {kTidMonitor, e.at, -1,
            util::str_format("headroom violation link%d", e.link)};
  }
  TraceShape operator()(const MigrationStarted& e) const {
    return {kTidController, e.at, -1,
            util::str_format("migration start c%d n%d->n%d", e.component,
                             e.from, e.to)};
  }
  TraceShape operator()(const MigrationCompleted& e) const {
    // Downtime renders as a slice covering the whole outage.
    return {kTidController, e.at - std::max<sim::Duration>(e.downtime, 0),
            std::max<sim::Duration>(e.downtime, 0),
            util::str_format("migrate c%d n%d->n%d", e.component, e.from, e.to)};
  }
  TraceShape operator()(const ControllerRound& e) const {
    return {kTidController, e.at, -1,
            util::str_format("controller round (%d violating)", e.violating)};
  }
  TraceShape operator()(const ReallocationSolved& e) const {
    return {kTidNetwork, e.at, -1,
            util::str_format("realloc %lld flows", static_cast<long long>(e.flows))};
  }
  TraceShape operator()(const LinkCapacityChanged& e) const {
    return {kTidNetwork, e.at, -1, util::str_format("capacity link%d", e.link)};
  }
  TraceShape operator()(const FaultInjected& e) const {
    return {kTidFault, e.at, -1,
            e.peer == net::kInvalidNode
                ? util::str_format("%s n%d", e.kind, e.node)
                : util::str_format("%s n%d-n%d", e.kind, e.node, e.peer)};
  }
  TraceShape operator()(const InvariantViolation& e) const {
    return {kTidFault, e.at, -1, util::str_format("INVARIANT %s", e.name)};
  }
  TraceShape operator()(const DeploymentClosed& e) const {
    return {kTidScheduler, e.at, -1,
            util::str_format("undeploy d%d (%d comps)", e.deployment,
                             e.components)};
  }
  TraceShape operator()(const AdmissionOutcome& e) const {
    // The admission wait renders as a slice covering arrival -> outcome.
    return {kTidScheduler, e.at - std::max<sim::Duration>(e.wait, 0),
            std::max<sim::Duration>(e.wait, 0),
            util::str_format("%s i%d (depth %d)", e.action, e.instance,
                             e.queue_depth)};
  }
  TraceShape operator()(const OrchestratorWarning& e) const {
    return {kTidScheduler, e.at, -1, util::str_format("WARN %s", e.what)};
  }
  TraceShape operator()(const ZoneRound& e) const {
    return {kTidZone, e.at, -1,
            e.zone < 0 ? util::str_format("round %d (all zones)", e.round)
                       : util::str_format("round %d zone%d", e.round, e.zone)};
  }
};

void append_escaped(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

// Causal-slice context for the trace export: which spans have descendants,
// and when each span's causal subtree ends. An instant event whose span
// caused later work (a controller round that started migrations) is
// promoted to a duration slice covering its whole subtree, so the
// descendant slices visually nest inside it on the Perfetto timeline.
struct SpanNesting {
  std::unordered_map<SpanId, sim::Time> subtree_end;
  std::unordered_set<SpanId> has_children;
};

void append_trace_entry(const Event& event, const SpanNesting* nesting,
                        std::string& out) {
  TraceShape shape = std::visit(TraceVisitor{}, event);
  const SpanId span = event_span(event);
  if (nesting != nullptr && shape.dur < 0 && span != kNoSpan &&
      nesting->has_children.count(span) != 0) {
    const auto it = nesting->subtree_end.find(span);
    if (it != nesting->subtree_end.end() && it->second > shape.ts) {
      shape.dur = it->second - shape.ts;
    }
  }
  out += ",\n    {\"name\":";
  append_escaped(shape.name, out);
  out += util::str_format(",\"cat\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%lld",
                          event_type_name(event), kPid, shape.tid,
                          static_cast<long long>(shape.ts));
  if (shape.dur >= 0) {
    out += util::str_format(",\"ph\":\"X\",\"dur\":%lld",
                            static_cast<long long>(shape.dur));
  } else {
    out += ",\"ph\":\"i\",\"s\":\"t\"";
  }
  // The full typed record rides along as args (span and parent included, so
  // flows can be followed from the detail pane), and Perfetto's detail pane
  // shows exactly what the JSONL export would.
  out += ",\"args\":{\"event\":";
  append_jsonl(event, out);
  out += "}}";
}

bool write_string(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(content.data(), 1, content.size(), f) ==
                     content.size();
  // Flush before the error check: a full disk often only surfaces here.
  const bool flushed = std::fflush(f) == 0 && std::ferror(f) == 0;
  return (std::fclose(f) == 0) && wrote && flushed;
}

}  // namespace

EventJournal::EventJournal(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1)) {}

void EventJournal::record(Event event) {
  if (size_ < ring_.size()) {
    ring_[(head_ + size_) % ring_.size()] = std::move(event);
    ++size_;
  } else {
    ring_[head_] = std::move(event);
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
  }
}

void EventJournal::for_each(const std::function<void(const Event&)>& fn) const {
  for (std::size_t i = 0; i < size_; ++i) {
    fn(ring_[(head_ + i) % ring_.size()]);
  }
}

std::vector<Event> EventJournal::snapshot() const {
  std::vector<Event> out;
  out.reserve(size_);
  for_each([&out](const Event& e) { out.push_back(e); });
  return out;
}

std::string EventJournal::to_jsonl() const {
  std::string out;
  for_each([&out](const Event& e) {
    append_jsonl(e, out);
    out += '\n';
  });
  return out;
}

bool EventJournal::write_jsonl(const std::string& path) const {
  return write_string(path, to_jsonl());
}

std::string EventJournal::to_trace() const {
  std::string out = "{\"traceEvents\":[\n";
  // Track labels.
  const std::pair<int, const char*> tracks[] = {
      {kTidScheduler, "scheduler"},
      {kTidController, "controller"},
      {kTidMonitor, "net-monitor"},
      {kTidNetwork, "network"},
      {kTidFault, "fault"},
      {kTidZone, "zones"},
  };
  out += util::str_format(
      "    {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
      "\"args\":{\"name\":\"bass\"}}",
      kPid);
  for (const auto& [tid, name] : tracks) {
    out += util::str_format(
        ",\n    {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
        "\"args\":{\"name\":\"%s\"}}",
        kPid, tid, name);
  }
  // Span pre-pass: per-span slice ends and parent links, then every
  // event's end time propagated up its parent chain, so a root span's
  // subtree end covers e.g. the downtime slice of a migration it caused.
  SpanNesting nesting;
  std::unordered_map<SpanId, SpanId> parent_of;
  std::vector<std::pair<SpanId, sim::Time>> seeds;
  for_each([&](const Event& e) {
    const TraceShape shape = std::visit(TraceVisitor{}, e);
    const sim::Time end = shape.ts + std::max<sim::Duration>(shape.dur, 0);
    const SpanId span = event_span(e);
    const SpanId parent = event_parent(e);
    if (span != kNoSpan) {
      seeds.emplace_back(span, end);
      if (parent != kNoSpan) parent_of.emplace(span, parent);
    }
    if (parent != kNoSpan) {
      nesting.has_children.insert(parent);
      seeds.emplace_back(parent, end);
    }
  });
  for (const auto& [start, end] : seeds) {
    SpanId s = start;
    // Bounded walk: parent chains are shallow (fault → round → move), the
    // guard only protects against a corrupted journal's reference loop.
    for (int depth = 0; s != kNoSpan && depth < 64; ++depth) {
      auto [it, inserted] = nesting.subtree_end.emplace(s, end);
      if (!inserted && it->second < end) it->second = end;
      const auto p = parent_of.find(s);
      s = p == parent_of.end() ? kNoSpan : p->second;
    }
  }
  for_each([&](const Event& e) { append_trace_entry(e, &nesting, out); });
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool EventJournal::write_trace(const std::string& path) const {
  return write_string(path, to_trace());
}

bool parse_journal_line(const std::string& line,
                        std::vector<std::pair<std::string, std::string>>& fields) {
  fields.clear();
  std::size_t i = 0;
  const std::size_t n = line.size();
  auto skip_ws = [&] { while (i < n && (line[i] == ' ' || line[i] == '\t')) ++i; };
  skip_ws();
  if (i >= n || line[i] != '{') return false;
  ++i;
  skip_ws();
  if (i < n && line[i] == '}') return true;  // empty object
  while (i < n) {
    skip_ws();
    if (i >= n || line[i] != '"') return false;
    const std::size_t key_start = ++i;
    while (i < n && line[i] != '"') ++i;
    if (i >= n) return false;
    std::string key = line.substr(key_start, i - key_start);
    ++i;
    skip_ws();
    if (i >= n || line[i] != ':') return false;
    ++i;
    skip_ws();
    std::string value;
    if (i < n && line[i] == '"') {
      const std::size_t val_start = i++;
      while (i < n && line[i] != '"') {
        if (line[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      if (i >= n) return false;
      ++i;
      value = line.substr(val_start, i - val_start);
    } else {
      const std::size_t val_start = i;
      while (i < n && line[i] != ',' && line[i] != '}') ++i;
      value = util::trim(line.substr(val_start, i - val_start));
      if (value.empty()) return false;
    }
    fields.emplace_back(std::move(key), std::move(value));
    skip_ws();
    if (i >= n) return false;
    if (line[i] == '}') return true;
    if (line[i] != ',') return false;
    ++i;
  }
  return false;
}

}  // namespace bass::obs
