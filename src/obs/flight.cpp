#include "obs/flight.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <vector>

#include "util/simd.h"
#include "util/strings.h"

namespace bass::obs {

namespace {

// The armed instance for the SIGABRT hook. Atomic pointer, not a lock: the
// handler may run on any thread and must never block.
std::atomic<FlightRecorder*> g_signal_target{nullptr};

extern "C" void flight_sigabrt_handler(int signo) {
  FlightRecorder* target = g_signal_target.load(std::memory_order_acquire);
  if (target != nullptr) target->dump_once("sigabrt");
  // Restore default disposition and re-raise so the process still dies the
  // way the caller expected (core dump, CI failure, ...).
  std::signal(signo, SIG_DFL);
  std::raise(signo);
}

}  // namespace

std::string build_info_json() {
#ifdef BASS_BUILD_TYPE
  const char* build_type = BASS_BUILD_TYPE;
#else
  const char* build_type = "unknown";
#endif
#ifdef BASS_CXX_FLAGS
  const char* flags = BASS_CXX_FLAGS;
#else
  const char* flags = "";
#endif
  bool sanitized = false;
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  sanitized = true;
#endif
  std::string out = "{\"compiler\":\"";
  for (const char* p = __VERSION__; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\') out += '\\';
    out += *p;
  }
  out += util::str_format(
      "\",\"build_type\":\"%s\",\"flags\":\"%s\",\"simd\":%s,\"sanitizer\":%s}",
      build_type, flags, util::simd::kCompiled ? "true" : "false",
      sanitized ? "true" : "false");
  return out;
}

FlightRecorder::FlightRecorder(Recorder& recorder, FlightConfig config)
    : recorder_(recorder), config_(std::move(config)) {
  if (config_.last_events == 0) config_.last_events = 1;
  if (config_.directory.empty()) config_.directory = ".";
}

FlightRecorder::~FlightRecorder() {
  if (armed_) {
    FlightRecorder* self = this;
    if (g_signal_target.compare_exchange_strong(self, nullptr)) {
      std::signal(SIGABRT, SIG_DFL);
    }
  }
}

std::string FlightRecorder::path() const {
  return config_.directory + "/flight_" + config_.tag + ".jsonl";
}

bool FlightRecorder::dump(const char* why) {
  const EventJournal& journal = recorder_.journal();  // flushes staged events
  const std::vector<Event> events = journal.snapshot();
  const std::size_t keep = std::min(config_.last_events, events.size());
  const std::size_t first = events.size() - keep;
  const sim::Time last_t =
      events.empty() ? 0 : event_time(events.back());  // sim time, not wall

  std::string out = util::str_format(
      "{\"type\":\"flight_header\",\"why\":\"%s\",\"tag\":\"%s\","
      "\"t_us\":%lld,\"events\":%zu,\"journal_size\":%zu,"
      "\"journal_dropped\":%lld,\"build\":",
      why, config_.tag.c_str(), static_cast<long long>(last_t), keep,
      events.size(), static_cast<long long>(journal.dropped()));
  out += build_info_json();
  out += "}\n";
  for (std::size_t i = first; i < events.size(); ++i) {
    append_jsonl(events[i], out);
    out += '\n';
  }
  // The metrics snapshot as one line so the dump stays greppable JSONL;
  // to_json is multi-line pretty output, so strip the newlines.
  std::string metrics = recorder_.metrics().to_json(last_t);
  std::string flat;
  flat.reserve(metrics.size());
  for (char c : metrics) {
    if (c != '\n') flat += c;
  }
  out += "{\"type\":\"flight_metrics\",\"metrics\":" + flat + "}\n";

  std::FILE* f = std::fopen(path().c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  const bool flushed = std::fflush(f) == 0 && std::ferror(f) == 0;
  const bool ok = (std::fclose(f) == 0) && wrote && flushed;
  dumped_ = dumped_ || ok;
  return ok;
}

bool FlightRecorder::dump_once(const char* why) {
  if (dumped_) return true;
  return dump(why);
}

void FlightRecorder::arm_signal_hook() {
  g_signal_target.store(this, std::memory_order_release);
  std::signal(SIGABRT, flight_sigabrt_handler);
  armed_ = true;
}

}  // namespace bass::obs
