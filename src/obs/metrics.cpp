#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "util/strings.h"

namespace bass::obs {

namespace {

std::string instrument_key(const std::string& name, const Labels& labels) {
  // Label order is canonicalized so {a=1,b=2} and {b=2,a=1} resolve to the
  // same instrument — dynamic-cardinality call sites (one instrument per
  // zone) must not mint duplicates just by listing labels differently. The
  // instrument's display labels keep first-registration order.
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name;
  for (const auto& [k, v] : sorted) {
    key += '\x1f';  // unit separator: cannot appear in sane label text
    key += k;
    key += '\x1f';
    key += v;
  }
  return key;
}

void append_escaped(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::str_format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_name_labels(const std::string& name, const Labels& labels,
                        std::string& out) {
  out += "\"name\":";
  append_escaped(name, out);
  out += ",\"labels\":{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out += ',';
    append_escaped(labels[i].first, out);
    out += ':';
    append_escaped(labels[i].second, out);
  }
  out += '}';
}

// %g keeps integers unadorned and large/small values readable.
void append_double(double v, std::string& out) {
  out += util::str_format("%.9g", v);
}

}  // namespace

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)) {
  std::sort(boundaries_.begin(), boundaries_.end());
  boundaries_.erase(std::unique(boundaries_.begin(), boundaries_.end()),
                    boundaries_.end());
  buckets_.assign(boundaries_.size() + 1, 0);
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(boundaries_.begin(), boundaries_.end(), value);
  ++buckets_[static_cast<std::size_t>(it - boundaries_.begin())];
  ++count_;
  sum_ += value;
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
}

void Histogram::merge(const Histogram& other) {
  assert(boundaries_ == other.boundaries_ && "merge requires one ladder");
  if (other.count_ == 0) return;  // empty right side: identity
  for (std::size_t i = 0; i < buckets_.size() && i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    // Empty left side adopts the other's extremes rather than keeping the
    // default-initialized 0.0 sentinels as fabricated observations.
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  std::int64_t rank = static_cast<std::int64_t>(
      q * static_cast<double>(count_) + 0.999999);
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum >= rank) {
      // Overflow bucket has no upper boundary; max is the honest answer.
      const double upper =
          i < boundaries_.size() ? boundaries_[i] : max_;
      // Clamping keeps boundary-valued samples from overshooting: a run
      // whose every sample equals boundary b must report percentile == b
      // == max, and no quantile may fall outside the observed extremes.
      return std::min(std::max(upper, min_), max_);
    }
  }
  return max_;
}

double LogHistogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  std::int64_t rank = static_cast<std::int64_t>(
      q * static_cast<double>(count_) + 0.999999);
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= rank) {
      const double upper = static_cast<double>(bucket_upper(i));
      return std::min(std::max(upper, min_), max_);
    }
  }
  return max_;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LogHistogram::for_each_nonzero(
    const std::function<void(std::uint64_t, std::int64_t)>& fn) const {
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] != 0) fn(bucket_upper(i), counts_[i]);
  }
}

const std::vector<double>& default_time_boundaries_us() {
  static const std::vector<double> kBoundaries = {
      1,    2,    5,    10,    20,    50,    100,    200,    500,
      1000, 2000, 5000, 10000, 20000, 50000, 100000, 200000, 500000,
      1000000};
  return kBoundaries;
}

MetricsRegistry::Instrument& MetricsRegistry::find_or_create(
    const std::string& name, const Labels& labels, Kind kind,
    std::vector<double>* boundaries) {
  const std::string key = instrument_key(name, labels);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    Instrument& inst = *order_[it->second];
    assert(inst.kind == kind && "metric registered twice with different kinds");
    if (inst.kind != kind) {
      // Release-build fallback: a detached scratch instrument keeps the
      // caller functional without corrupting the registered one.
      static thread_local std::unique_ptr<Instrument> scratch;
      scratch = std::make_unique<Instrument>();
      scratch->name = name;
      scratch->kind = kind;
      scratch->counter = std::make_unique<Counter>();
      scratch->gauge = std::make_unique<Gauge>();
      scratch->histogram = std::make_unique<Histogram>(
          boundaries ? *boundaries : default_time_boundaries_us());
      scratch->log_histogram = std::make_unique<LogHistogram>();
      return *scratch;
    }
    return inst;
  }
  auto inst = std::make_unique<Instrument>();
  inst->name = name;
  inst->labels = labels;
  inst->kind = kind;
  switch (kind) {
    case Kind::kCounter: inst->counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: inst->gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram:
      inst->histogram = std::make_unique<Histogram>(
          boundaries ? std::move(*boundaries) : default_time_boundaries_us());
      break;
    case Kind::kLogHistogram:
      inst->log_histogram = std::make_unique<LogHistogram>();
      break;
  }
  index_.emplace(key, order_.size());
  order_.push_back(std::move(inst));
  return *order_.back();
}

Counter& MetricsRegistry::counter(const std::string& name, const Labels& labels) {
  return *find_or_create(name, labels, Kind::kCounter, nullptr).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  return *find_or_create(name, labels, Kind::kGauge, nullptr).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> boundaries,
                                      const Labels& labels) {
  return *find_or_create(name, labels, Kind::kHistogram, &boundaries).histogram;
}

LogHistogram& MetricsRegistry::log_histogram(const std::string& name,
                                             const Labels& labels) {
  return *find_or_create(name, labels, Kind::kLogHistogram, nullptr).log_histogram;
}

LogHistogram& MetricsRegistry::log_timer_us(const std::string& name,
                                            const Labels& labels) {
  return log_histogram(name, labels);
}

void MetricsRegistry::for_each_counter(
    const std::function<void(const std::string&, const Labels&,
                             const Counter&)>& fn) const {
  for (const auto& inst : order_) {
    if (inst->kind == Kind::kCounter) fn(inst->name, inst->labels, *inst->counter);
  }
}

void MetricsRegistry::for_each_gauge(
    const std::function<void(const std::string&, const Labels&,
                             const Gauge&)>& fn) const {
  for (const auto& inst : order_) {
    if (inst->kind == Kind::kGauge) fn(inst->name, inst->labels, *inst->gauge);
  }
}

void MetricsRegistry::for_each_log_histogram(
    const std::function<void(const std::string&, const Labels&,
                             const LogHistogram&)>& fn) const {
  for (const auto& inst : order_) {
    if (inst->kind == Kind::kLogHistogram) {
      fn(inst->name, inst->labels, *inst->log_histogram);
    }
  }
}

std::string MetricsRegistry::to_json(sim::Time now) const {
  std::string counters, gauges, histograms;
  for (const auto& inst : order_) {
    switch (inst->kind) {
      case Kind::kCounter: {
        if (!counters.empty()) counters += ",\n";
        counters += "    {";
        append_name_labels(inst->name, inst->labels, counters);
        counters += util::str_format(",\"value\":%lld}",
                                     static_cast<long long>(inst->counter->value()));
        break;
      }
      case Kind::kGauge: {
        if (!gauges.empty()) gauges += ",\n";
        gauges += "    {";
        append_name_labels(inst->name, inst->labels, gauges);
        gauges += ",\"value\":";
        append_double(inst->gauge->value(), gauges);
        gauges += '}';
        break;
      }
      case Kind::kHistogram: {
        const Histogram& h = *inst->histogram;
        if (!histograms.empty()) histograms += ",\n";
        histograms += "    {";
        append_name_labels(inst->name, inst->labels, histograms);
        histograms += util::str_format(",\"count\":%lld,\"sum\":",
                                       static_cast<long long>(h.count()));
        append_double(h.sum(), histograms);
        // min()/max() are NaN on empty histograms; JSON has no NaN literal,
        // so snapshots keep the historical 0.0 placeholder (count
        // disambiguates).
        histograms += ",\"min\":";
        append_double(h.empty() ? 0.0 : h.min(), histograms);
        histograms += ",\"max\":";
        append_double(h.empty() ? 0.0 : h.max(), histograms);
        histograms += ",\"p50\":";
        append_double(h.percentile(0.50), histograms);
        histograms += ",\"p90\":";
        append_double(h.percentile(0.90), histograms);
        histograms += ",\"p99\":";
        append_double(h.percentile(0.99), histograms);
        histograms += ",\"boundaries\":[";
        for (std::size_t i = 0; i < h.boundaries().size(); ++i) {
          if (i != 0) histograms += ',';
          append_double(h.boundaries()[i], histograms);
        }
        histograms += "],\"buckets\":[";
        for (std::size_t i = 0; i < h.bucket_counts().size(); ++i) {
          if (i != 0) histograms += ',';
          histograms += util::str_format(
              "%lld", static_cast<long long>(h.bucket_counts()[i]));
        }
        histograms += "]}";
        break;
      }
      case Kind::kLogHistogram: {
        const LogHistogram& h = *inst->log_histogram;
        if (!histograms.empty()) histograms += ",\n";
        histograms += "    {";
        append_name_labels(inst->name, inst->labels, histograms);
        histograms += util::str_format(",\"kind\":\"log2\",\"count\":%lld,\"sum\":",
                                       static_cast<long long>(h.count()));
        append_double(h.sum(), histograms);
        histograms += ",\"min\":";
        append_double(h.empty() ? 0.0 : h.min(), histograms);
        histograms += ",\"max\":";
        append_double(h.empty() ? 0.0 : h.max(), histograms);
        histograms += ",\"p50\":";
        append_double(h.percentile(0.50), histograms);
        histograms += ",\"p90\":";
        append_double(h.percentile(0.90), histograms);
        histograms += ",\"p99\":";
        append_double(h.percentile(0.99), histograms);
        // Sparse [upper_bound, count] pairs: 976 fixed slots are almost all
        // empty, and the sparse form is what merge-side consumers rebuild.
        histograms += ",\"buckets\":[";
        bool first = true;
        h.for_each_nonzero([&](std::uint64_t upper, std::int64_t n) {
          if (!first) histograms += ',';
          first = false;
          histograms += util::str_format("[%llu,%lld]",
                                         static_cast<unsigned long long>(upper),
                                         static_cast<long long>(n));
        });
        histograms += "]}";
        break;
      }
    }
  }
  std::string out = util::str_format("{\n  \"t_us\":%lld,\n",
                                     static_cast<long long>(now));
  out += "  \"counters\":[\n" + counters + "\n  ],\n";
  out += "  \"gauges\":[\n" + gauges + "\n  ],\n";
  out += "  \"histograms\":[\n" + histograms + "\n  ]\n}\n";
  return out;
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted names map 1:1.
std::string prom_name(const std::string& name) {
  std::string out = "bass_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

// Prometheus label names allow [a-zA-Z_][a-zA-Z0-9_]*; anything else maps
// to '_' (with a leading '_' when the first char would be a digit).
std::string prom_label_name(const std::string& name) {
  std::string out;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(out.begin(), '_');
  return out;
}

// Renders {k="v",...}; `extra` ("le=\"5\"" / "quantile=\"0.5\"") is
// appended after the instrument's own labels. Values follow the exposition
// format's escaping rules: backslash, double-quote, and newline.
std::string prom_labels(const Labels& labels, const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) return {};
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out += ',';
    out += prom_label_name(labels[i].first);
    out += "=\"";
    for (char c : labels[i].second) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        default: out += c;
      }
    }
    out += '"';
  }
  if (!extra.empty()) {
    if (!labels.empty()) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

std::string prom_number(double v) { return util::str_format("%.9g", v); }

}  // namespace

std::string MetricsRegistry::to_prometheus(sim::Time now) const {
  std::string out = util::str_format(
      "# BASS metrics snapshot at sim t_us=%lld\n", static_cast<long long>(now));
  for (const auto& inst : order_) {
    const std::string name = prom_name(inst->name);
    switch (inst->kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + prom_labels(inst->labels) +
               util::str_format(" %lld\n",
                                static_cast<long long>(inst->counter->value()));
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + prom_labels(inst->labels) + ' ' +
               prom_number(inst->gauge->value()) + '\n';
        break;
      case Kind::kHistogram: {
        const Histogram& h = *inst->histogram;
        out += "# TYPE " + name + " histogram\n";
        std::int64_t cum = 0;
        for (std::size_t i = 0; i < h.boundaries().size(); ++i) {
          cum += h.bucket_counts()[i];
          out += name + "_bucket" +
                 prom_labels(inst->labels,
                             "le=\"" + prom_number(h.boundaries()[i]) + "\"") +
                 util::str_format(" %lld\n", static_cast<long long>(cum));
        }
        out += name + "_bucket" + prom_labels(inst->labels, "le=\"+Inf\"") +
               util::str_format(" %lld\n", static_cast<long long>(h.count()));
        out += name + "_sum" + prom_labels(inst->labels) + ' ' +
               prom_number(h.sum()) + '\n';
        out += name + "_count" + prom_labels(inst->labels) +
               util::str_format(" %lld\n", static_cast<long long>(h.count()));
        break;
      }
      case Kind::kLogHistogram: {
        // Log histograms export as summaries: fixed le ladders don't fit
        // log2 buckets, and the quantiles are what dashboards plot anyway.
        const LogHistogram& h = *inst->log_histogram;
        out += "# TYPE " + name + " summary\n";
        for (const auto& [tag, q] :
             {std::pair<const char*, double>{"0.5", 0.50},
              {"0.9", 0.90},
              {"0.99", 0.99}}) {
          out += name +
                 prom_labels(inst->labels,
                             std::string("quantile=\"") + tag + "\"") +
                 ' ' + prom_number(h.percentile(q)) + '\n';
        }
        out += name + "_sum" + prom_labels(inst->labels) + ' ' +
               prom_number(h.sum()) + '\n';
        out += name + "_count" + prom_labels(inst->labels) +
               util::str_format(" %lld\n", static_cast<long long>(h.count()));
        break;
      }
    }
  }
  return out;
}

bool MetricsRegistry::write_json(const std::string& path, sim::Time now) const {
  const std::string content = to_json(now);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool flushed = std::fflush(f) == 0 && std::ferror(f) == 0;
  return (std::fclose(f) == 0) && wrote && flushed;
}

}  // namespace bass::obs
