#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "util/strings.h"

namespace bass::obs {

namespace {

std::string instrument_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';  // unit separator: cannot appear in sane label text
    key += k;
    key += '\x1f';
    key += v;
  }
  return key;
}

void append_escaped(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

void append_name_labels(const std::string& name, const Labels& labels,
                        std::string& out) {
  out += "\"name\":";
  append_escaped(name, out);
  out += ",\"labels\":{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out += ',';
    append_escaped(labels[i].first, out);
    out += ':';
    append_escaped(labels[i].second, out);
  }
  out += '}';
}

// %g keeps integers unadorned and large/small values readable.
void append_double(double v, std::string& out) {
  out += util::str_format("%.9g", v);
}

}  // namespace

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)) {
  std::sort(boundaries_.begin(), boundaries_.end());
  boundaries_.erase(std::unique(boundaries_.begin(), boundaries_.end()),
                    boundaries_.end());
  buckets_.assign(boundaries_.size() + 1, 0);
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(boundaries_.begin(), boundaries_.end(), value);
  ++buckets_[static_cast<std::size_t>(it - boundaries_.begin())];
  ++count_;
  sum_ += value;
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
}

const std::vector<double>& default_time_boundaries_us() {
  static const std::vector<double> kBoundaries = {
      1,    2,    5,    10,    20,    50,    100,    200,    500,
      1000, 2000, 5000, 10000, 20000, 50000, 100000, 200000, 500000,
      1000000};
  return kBoundaries;
}

MetricsRegistry::Instrument& MetricsRegistry::find_or_create(
    const std::string& name, const Labels& labels, Kind kind,
    std::vector<double>* boundaries) {
  const std::string key = instrument_key(name, labels);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    Instrument& inst = *order_[it->second];
    assert(inst.kind == kind && "metric registered twice with different kinds");
    if (inst.kind != kind) {
      // Release-build fallback: a detached scratch instrument keeps the
      // caller functional without corrupting the registered one.
      static thread_local std::unique_ptr<Instrument> scratch;
      scratch = std::make_unique<Instrument>();
      scratch->name = name;
      scratch->kind = kind;
      scratch->counter = std::make_unique<Counter>();
      scratch->gauge = std::make_unique<Gauge>();
      scratch->histogram = std::make_unique<Histogram>(
          boundaries ? *boundaries : default_time_boundaries_us());
      return *scratch;
    }
    return inst;
  }
  auto inst = std::make_unique<Instrument>();
  inst->name = name;
  inst->labels = labels;
  inst->kind = kind;
  switch (kind) {
    case Kind::kCounter: inst->counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: inst->gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram:
      inst->histogram = std::make_unique<Histogram>(
          boundaries ? std::move(*boundaries) : default_time_boundaries_us());
      break;
  }
  index_.emplace(key, order_.size());
  order_.push_back(std::move(inst));
  return *order_.back();
}

Counter& MetricsRegistry::counter(const std::string& name, const Labels& labels) {
  return *find_or_create(name, labels, Kind::kCounter, nullptr).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  return *find_or_create(name, labels, Kind::kGauge, nullptr).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> boundaries,
                                      const Labels& labels) {
  return *find_or_create(name, labels, Kind::kHistogram, &boundaries).histogram;
}

Histogram& MetricsRegistry::timer_us(const std::string& name, const Labels& labels) {
  return histogram(name, default_time_boundaries_us(), labels);
}

std::string MetricsRegistry::to_json(sim::Time now) const {
  std::string counters, gauges, histograms;
  for (const auto& inst : order_) {
    switch (inst->kind) {
      case Kind::kCounter: {
        if (!counters.empty()) counters += ",\n";
        counters += "    {";
        append_name_labels(inst->name, inst->labels, counters);
        counters += util::str_format(",\"value\":%lld}",
                                     static_cast<long long>(inst->counter->value()));
        break;
      }
      case Kind::kGauge: {
        if (!gauges.empty()) gauges += ",\n";
        gauges += "    {";
        append_name_labels(inst->name, inst->labels, gauges);
        gauges += ",\"value\":";
        append_double(inst->gauge->value(), gauges);
        gauges += '}';
        break;
      }
      case Kind::kHistogram: {
        const Histogram& h = *inst->histogram;
        if (!histograms.empty()) histograms += ",\n";
        histograms += "    {";
        append_name_labels(inst->name, inst->labels, histograms);
        histograms += util::str_format(",\"count\":%lld,\"sum\":",
                                       static_cast<long long>(h.count()));
        append_double(h.sum(), histograms);
        histograms += ",\"min\":";
        append_double(h.min(), histograms);
        histograms += ",\"max\":";
        append_double(h.max(), histograms);
        histograms += ",\"boundaries\":[";
        for (std::size_t i = 0; i < h.boundaries().size(); ++i) {
          if (i != 0) histograms += ',';
          append_double(h.boundaries()[i], histograms);
        }
        histograms += "],\"buckets\":[";
        for (std::size_t i = 0; i < h.bucket_counts().size(); ++i) {
          if (i != 0) histograms += ',';
          histograms += util::str_format(
              "%lld", static_cast<long long>(h.bucket_counts()[i]));
        }
        histograms += "]}";
        break;
      }
    }
  }
  std::string out = util::str_format("{\n  \"t_us\":%lld,\n",
                                     static_cast<long long>(now));
  out += "  \"counters\":[\n" + counters + "\n  ],\n";
  out += "  \"gauges\":[\n" + gauges + "\n  ],\n";
  out += "  \"histograms\":[\n" + histograms + "\n  ]\n}\n";
  return out;
}

bool MetricsRegistry::write_json(const std::string& path, sim::Time now) const {
  const std::string content = to_json(now);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool flushed = std::fflush(f) == 0 && std::ferror(f) == 0;
  return (std::fclose(f) == 0) && wrote && flushed;
}

}  // namespace bass::obs
