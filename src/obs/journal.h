// Structured event journal: a bounded ring of typed events. Recording is a
// move into a preallocated slot — no I/O, no allocation beyond the strings
// an event already owns — so subsystems can journal from hot paths. When
// the ring fills, the oldest events are overwritten and counted as dropped
// (an operator tailing a long run wants the recent window, not an OOM).
//
// Exports:
//  * JSON Lines — one flat object per event; `bassctl events` and the CI
//    schema check consume this.
//  * Chrome trace_event JSON — loadable in Perfetto/chrome://tracing.
//    Migrations render as duration slices on a per-subsystem track, other
//    events as instants, so a run can be scrubbed visually (Fig. 8 style).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/events.h"

namespace bass::obs {

class EventJournal {
 public:
  // Capacity is clamped to >= 1.
  explicit EventJournal(std::size_t capacity = 1 << 16);

  void record(Event event);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return ring_.size(); }
  bool empty() const { return size_ == 0; }
  // Events overwritten because the ring was full.
  std::int64_t dropped() const { return dropped_; }

  // Visits retained events oldest-first.
  void for_each(const std::function<void(const Event&)>& fn) const;

  // Retained events oldest-first (copies; prefer for_each on large rings).
  std::vector<Event> snapshot() const;

  // Serializes retained events as JSON Lines. write_* return false on any
  // I/O error (including a failed final flush).
  std::string to_jsonl() const;
  bool write_jsonl(const std::string& path) const;

  // Chrome trace_event format: {"traceEvents":[...]}, ts in microseconds
  // of sim time, one tid per subsystem (scheduler/controller/monitor/
  // network) with thread_name metadata so Perfetto labels the tracks.
  std::string to_trace() const;
  bool write_trace(const std::string& path) const;

 private:
  std::vector<Event> ring_;
  std::size_t head_ = 0;  // index of the oldest retained event
  std::size_t size_ = 0;
  std::int64_t dropped_ = 0;
};

// Parses one journal JSONL line into (key, raw-value) pairs; values keep
// their JSON spelling (strings keep quotes). Returns false on a line that
// is not a flat JSON object. Only handles the flat objects the journal
// emits — this is a reader for our own format, not a JSON library.
bool parse_journal_line(const std::string& line,
                        std::vector<std::pair<std::string, std::string>>& fields);

}  // namespace bass::obs
