// Metrics registry: named counters, gauges, and fixed-boundary histograms
// with label support, snapshotable to JSON at any sim time.
//
// Lookup (`counter("net.reallocations")`) hashes the name+labels; emitters
// on hot paths do the lookup once and keep the returned reference —
// instrument handles are stable for the registry's lifetime (the registry
// stores instruments behind unique_ptr). Updates through a handle are a
// single add/store.
//
// Naming conventions (DESIGN.md §6): dot-separated `<subsystem>.<what>`
// with a unit suffix where one applies (`_us`, `_ms`, `_bytes`, `_bps`).
// Labels distinguish instances of the same metric (e.g. probe kind), not
// subsystems — those belong in the name.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <limits>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace bass::obs {

using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void add(std::int64_t delta) { value_ += delta; }
  void inc() { ++value_; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

class Gauge {
 public:
  void set(double value) { value_ = value; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Fixed-boundary histogram: observation x lands in the first bucket with
// x <= boundary, else in the implicit +Inf overflow bucket — so
// bucket_counts()[i] covers the half-open range (boundaries[i-1],
// boundaries[i]], and a sample exactly on a boundary counts toward the
// bucket whose upper bound it equals. Per-bucket counts, sum, min, and max
// are kept so snapshots can report both the distribution and the extremes.
class Histogram {
 public:
  explicit Histogram(std::vector<double> boundaries);

  void observe(double value);

  std::int64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double sum() const { return sum_; }
  // Empty histograms have no extremes: min()/max() return NaN so "no data"
  // can never be confused with an observed 0.0. Emitters that need a finite
  // value (JSON, report tables) must check empty() first.
  double min() const {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
  }
  double max() const {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
  }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  // Folds `other` into this histogram. Both sides must share the same
  // boundary ladder (asserted). Merging an empty side is an identity in
  // either direction: an empty `other` changes nothing, and merging into an
  // empty `this` adopts `other`'s extremes instead of fabricating 0.0 ones.
  void merge(const Histogram& other);
  // Bucket-resolution quantile, q in [0, 1]: the upper boundary of the
  // bucket holding the ceil(q*count)-th sample, clamped to [min, max] so a
  // boundary-valued sample reports its own value (not the next bucket's
  // edge) and percentile(1.0) == max() exactly.
  double percentile(double q) const;
  const std::vector<double>& boundaries() const { return boundaries_; }
  // bucket_counts()[i] observations fell in (boundaries[i-1], boundaries[i]];
  // the final entry is the +Inf overflow bucket.
  const std::vector<std::int64_t>& bucket_counts() const { return buckets_; }

 private:
  std::vector<double> boundaries_;        // ascending
  std::vector<std::int64_t> buckets_;     // boundaries_.size() + 1 (overflow)
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// HDR-style log2-bucketed latency histogram (DESIGN.md §6). Sixteen
// sub-buckets per power of two bound the relative quantile error at
// 1/16 ≈ 6%, which is plenty for p50/p99 over wall-clock timers while the
// whole state stays one fixed 976-slot array: recording is a shift, a
// table increment, and four scalar updates — zero allocation, any value
// range, no boundary ladder to pick per metric. Two same-shape histograms
// merge bucket-wise, which is how sweep workers' per-run timers fold into
// one fleet-wide distribution (exec::run_sweep, bassctl chaos).
class LogHistogram {
 public:
  static constexpr int kSubBucketBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(64 - kSubBucketBits + 1) * kSubBuckets;

  // Values below kSubBuckets map to themselves (exact); above, the bucket
  // keeps the top kSubBucketBits+1 significant bits of the value.
  static std::size_t bucket_index(std::uint64_t v) {
    if (v < static_cast<std::uint64_t>(kSubBuckets)) {
      return static_cast<std::size_t>(v);
    }
    const int shift = (63 - std::countl_zero(v)) - kSubBucketBits;
    return static_cast<std::size_t>(shift) * kSubBuckets +
           static_cast<std::size_t>(v >> shift);
  }

  // Largest value mapping to `index` — the representative quantiles report.
  static std::uint64_t bucket_upper(std::size_t index) {
    if (index < static_cast<std::size_t>(kSubBuckets)) return index;
    const std::size_t shift = index / kSubBuckets - 1;
    const std::uint64_t sub = index - shift * kSubBuckets;
    return ((sub + 1) << shift) - 1;
  }

  void observe(double value) {
    const std::uint64_t v =
        value <= 0.0 ? 0 : static_cast<std::uint64_t>(value + 0.5);
    ++counts_[bucket_index(v)];
    ++count_;
    sum_ += value;
    if (count_ == 1) {
      min_ = max_ = value;
    } else {
      if (value < min_) min_ = value;
      if (value > max_) max_ = value;
    }
  }

  std::int64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double sum() const { return sum_; }
  // NaN when empty — same contract as Histogram::min()/max().
  double min() const {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
  }
  double max() const {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
  }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

  // Bucket-representative quantile clamped to [min, max]; q in [0, 1].
  double percentile(double q) const;

  // Folds `other` into this histogram (same fixed shape by construction).
  // Merging an empty side is an identity in either direction.
  void merge(const LogHistogram& other);

  // Visits (bucket_upper, count) for every non-empty bucket, ascending.
  void for_each_nonzero(
      const std::function<void(std::uint64_t, std::int64_t)>& fn) const;

 private:
  std::array<std::int64_t, kBucketCount> counts_{};
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Default boundaries for wall-clock timer histograms, in microseconds:
// 1 us .. 1 s in a 1-2-5 ladder. Matches the repo's hot-path scale — a
// component solve is microseconds, a full scheduler pass is milliseconds.
const std::vector<double>& default_time_boundaries_us();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. A name+labels pair must keep one instrument kind for
  // the registry's lifetime; a kind clash trips an assert in debug builds
  // and returns a detached scratch instrument in release builds.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, std::vector<double> boundaries,
                       const Labels& labels = {});
  // Log2-bucketed histogram; `log_timer_us` is the naming-convention entry
  // point for wall-clock timers (values in microseconds).
  LogHistogram& log_histogram(const std::string& name, const Labels& labels = {});
  LogHistogram& log_timer_us(const std::string& name, const Labels& labels = {});

  std::size_t instrument_count() const { return order_.size(); }

  // Visits every log histogram in registration order — the merge hook for
  // sweep workers folding per-run timers into a fleet-wide distribution.
  void for_each_log_histogram(
      const std::function<void(const std::string&, const Labels&,
                               const LogHistogram&)>& fn) const;

  // Counter/gauge visitors in registration order — lets the sharded
  // orchestrator re-home per-zone instruments under a {zone} label.
  void for_each_counter(
      const std::function<void(const std::string&, const Labels&,
                               const Counter&)>& fn) const;
  void for_each_gauge(
      const std::function<void(const std::string&, const Labels&,
                               const Gauge&)>& fn) const;

  // JSON snapshot: {"t_us":..., "counters":[...], "gauges":[...],
  // "histograms":[...]}, instruments in registration order. Histogram
  // entries carry p50/p90/p99 alongside min/max/sum; log histograms appear
  // in the same array with "kind":"log2" and sparse [upper,count] buckets.
  std::string to_json(sim::Time now) const;
  bool write_json(const std::string& path, sim::Time now) const;

  // Prometheus text exposition of the same snapshot: counters and gauges
  // verbatim, fixed histograms as cumulative `le` buckets, log histograms
  // as quantile summaries. Names get a `bass_` prefix with dots mapped to
  // underscores.
  std::string to_prometheus(sim::Time now) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kLogHistogram };

  struct Instrument {
    std::string name;
    Labels labels;
    Kind kind = Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<LogHistogram> log_histogram;
  };

  Instrument& find_or_create(const std::string& name, const Labels& labels,
                             Kind kind, std::vector<double>* boundaries);

  std::unordered_map<std::string, std::size_t> index_;  // key -> order_ slot
  std::vector<std::unique_ptr<Instrument>> order_;
};

}  // namespace bass::obs
