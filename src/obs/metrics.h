// Metrics registry: named counters, gauges, and fixed-boundary histograms
// with label support, snapshotable to JSON at any sim time.
//
// Lookup (`counter("net.reallocations")`) hashes the name+labels; emitters
// on hot paths do the lookup once and keep the returned reference —
// instrument handles are stable for the registry's lifetime (the registry
// stores instruments behind unique_ptr). Updates through a handle are a
// single add/store.
//
// Naming conventions (DESIGN.md §6): dot-separated `<subsystem>.<what>`
// with a unit suffix where one applies (`_us`, `_ms`, `_bytes`, `_bps`).
// Labels distinguish instances of the same metric (e.g. probe kind), not
// subsystems — those belong in the name.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace bass::obs {

using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void add(std::int64_t delta) { value_ += delta; }
  void inc() { ++value_; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

class Gauge {
 public:
  void set(double value) { value_ = value; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Fixed-boundary histogram: observation x lands in the first bucket with
// x <= boundary, else in the implicit +Inf overflow bucket. Cumulative
// counts, sum, min, and max are kept so snapshots can report both the
// distribution and the extremes.
class Histogram {
 public:
  explicit Histogram(std::vector<double> boundaries);

  void observe(double value);

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  const std::vector<double>& boundaries() const { return boundaries_; }
  // bucket_counts()[i] observations fell in (boundaries[i-1], boundaries[i]];
  // the final entry is the +Inf overflow bucket.
  const std::vector<std::int64_t>& bucket_counts() const { return buckets_; }

 private:
  std::vector<double> boundaries_;        // ascending
  std::vector<std::int64_t> buckets_;     // boundaries_.size() + 1 (overflow)
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Default boundaries for wall-clock timer histograms, in microseconds:
// 1 us .. 1 s in a 1-2-5 ladder. Matches the repo's hot-path scale — a
// component solve is microseconds, a full scheduler pass is milliseconds.
const std::vector<double>& default_time_boundaries_us();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. A name+labels pair must keep one instrument kind for
  // the registry's lifetime; a kind clash trips an assert in debug builds
  // and returns a detached scratch instrument in release builds.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, std::vector<double> boundaries,
                       const Labels& labels = {});
  // Timer histogram with the default microsecond ladder.
  Histogram& timer_us(const std::string& name, const Labels& labels = {});

  std::size_t instrument_count() const { return order_.size(); }

  // JSON snapshot: {"t_us":..., "counters":[...], "gauges":[...],
  // "histograms":[...]}, instruments in registration order.
  std::string to_json(sim::Time now) const;
  bool write_json(const std::string& path, sim::Time now) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Instrument {
    std::string name;
    Labels labels;
    Kind kind = Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Instrument& find_or_create(const std::string& name, const Labels& labels,
                             Kind kind, std::vector<double>* boundaries);

  std::unordered_map<std::string, std::size_t> index_;  // key -> order_ slot
  std::vector<std::unique_ptr<Instrument>> order_;
};

}  // namespace bass::obs
