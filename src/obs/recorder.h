// The single handle every subsystem emits through: one Recorder owns the
// event journal and the metrics registry, and is handed down from the
// scenario runner (or a test/bench harness) via each subsystem's
// set_recorder(). Everything tolerates a null recorder — instrumentation
// is pay-for-what-you-use: with no recorder attached, an emit site costs
// one pointer compare and a profiling scope costs one branch (no clock
// read, no allocation).
//
// Pure kernels (the max-min solver, the packers, the migration policy)
// have no recorder parameter by design; their profiling scopes reach the
// process-wide recorder installed with set_global_recorder(). Harnesses
// that want kernel timings install theirs explicitly; library code never
// installs one.
#pragma once

#include <chrono>

#include "obs/journal.h"
#include "obs/metrics.h"

namespace bass::obs {

struct RecorderConfig {
  std::size_t journal_capacity = 1 << 16;
  // Master switch: a disabled recorder drops events/timings at the emit
  // site (subsystems check enabled() once per emit).
  bool enabled = true;
};

class Recorder {
 public:
  explicit Recorder(RecorderConfig config = {});
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // Journals the event and bumps the per-type "events.<type>" counter.
  void record(Event event);

  EventJournal& journal() { return journal_; }
  const EventJournal& journal() const { return journal_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

 private:
  bool enabled_ = true;
  EventJournal journal_;
  MetricsRegistry metrics_;
  // Per-type event counters, indexed by variant alternative — cached so
  // record() on hot paths never hashes a metric name.
  std::vector<Counter*> type_counters_;
};

// Recorder for profiling scopes inside pure kernels. Resolution is one TLS
// load + null check: the calling thread's slot wins, and only a thread with
// no slot installed falls back to the process-wide default.
//
// Ownership rule: the recorder outlives its installation (install nullptr
// before destroying it). set_global_recorder() binds the *calling thread*
// only — a sweep worker installs its run's recorder for the duration of the
// run (use ScopedGlobalRecorder), so concurrent runs never share a slot.
// set_default_global_recorder() sets the process-wide fallback for
// single-threaded harnesses; install it before spawning worker threads.
Recorder* global_recorder();
// Returns the calling thread's previous slot value (for restore-on-exit).
Recorder* set_global_recorder(Recorder* recorder);
void set_default_global_recorder(Recorder* recorder);

// RAII install/restore of the calling thread's global-recorder slot.
class ScopedGlobalRecorder {
 public:
  explicit ScopedGlobalRecorder(Recorder* recorder)
      : prev_(set_global_recorder(recorder)) {}
  ScopedGlobalRecorder(const ScopedGlobalRecorder&) = delete;
  ScopedGlobalRecorder& operator=(const ScopedGlobalRecorder&) = delete;
  ~ScopedGlobalRecorder() { set_global_recorder(prev_); }

 private:
  Recorder* prev_;
};

// RAII wall-clock timer feeding a registry timer histogram ("<name>", unit
// microseconds). The clock is only read when a live, enabled recorder is
// present at construction.
class ScopedTimer {
 public:
  ScopedTimer(Recorder* recorder, const char* name)
      : recorder_(recorder != nullptr && recorder->enabled() ? recorder : nullptr),
        name_(name) {
    if (recorder_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (recorder_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    recorder_->metrics().timer_us(name_).observe(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }

 private:
  Recorder* recorder_;
  const char* name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bass::obs

// Profiling scope against the global recorder, for pure kernels that take
// no Recorder. Compiles to nothing with -DBASS_OBS_NO_PROFILING (perf
// builds that refuse even the null-check branch).
#ifdef BASS_OBS_NO_PROFILING
#define BASS_OBS_SCOPE(name)
#else
#define BASS_OBS_SCOPE(name) \
  ::bass::obs::ScopedTimer bass_obs_scope_##__LINE__(::bass::obs::global_recorder(), name)
#endif
