// The single handle every subsystem emits through: one Recorder owns the
// event journal and the metrics registry, and is handed down from the
// scenario runner (or a test/bench harness) via each subsystem's
// set_recorder(). Everything tolerates a null recorder — instrumentation
// is pay-for-what-you-use: with no recorder attached, an emit site costs
// one pointer compare and a profiling scope costs one branch (no clock
// read, no allocation).
//
// Recording is two-tier. Trivially-copyable events (every alternative that
// owns no string) are STAGED: the payload is memcpy'd into a fixed
// deferred-encode ring and only encoded into journal variants at a flush
// point — the ring filling up, a string-bearing event arriving, or any
// journal() access. Decision-path emit sites therefore cost a counter
// bump plus a small copy, never variant bookkeeping, and because every
// flush point is deterministic the journal sequence (and the exported
// JSONL bytes) is identical to eager recording — same-seed runs stay
// byte-identical.
//
// Pure kernels (the max-min solver, the packers, the migration policy)
// have no recorder parameter by design; their profiling scopes reach the
// process-wide recorder installed with set_global_recorder(). Harnesses
// that want kernel timings install theirs explicitly; library code never
// installs one.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>

#include "obs/journal.h"
#include "obs/metrics.h"

namespace bass::obs {

namespace detail {

// Index of alternative T inside a std::variant, at compile time. Only
// instantiate when T is known to be an alternative (see IsPodAlternative).
template <class T, class V>
struct AltIndex;
template <class T, class First, class... Rest>
struct AltIndex<T, std::variant<First, Rest...>>
    : std::integral_constant<std::size_t,
                             1 + AltIndex<T, std::variant<Rest...>>::value> {};
template <class T, class... Rest>
struct AltIndex<T, std::variant<T, Rest...>>
    : std::integral_constant<std::size_t, 0> {};

// True iff T is a variant alternative AND trivially copyable — i.e. safe to
// stage by memcpy. SFINAE-safe for any T (including the variant itself), so
// it can gate an overload without hard errors.
template <class T, class V>
struct IsPodAlternative : std::false_type {};
template <class T, class... Ts>
struct IsPodAlternative<T, std::variant<Ts...>>
    : std::bool_constant<(std::is_same_v<T, Ts> || ...) &&
                         std::is_trivially_copyable_v<T>> {};

// Largest trivially-copyable alternative — the deferred slot payload size.
template <class V>
struct MaxPodSize;
template <class... Ts>
struct MaxPodSize<std::variant<Ts...>> {
  static constexpr std::size_t value =
      std::max({(std::is_trivially_copyable_v<Ts> ? sizeof(Ts) : std::size_t{0})...});
};

}  // namespace detail

struct RecorderConfig {
  std::size_t journal_capacity = 1 << 16;
  // Deferred-encode ring slots. 0 journals every event eagerly (useful to
  // A/B the staging path); the default batches a control-loop round's worth
  // of decision events per flush.
  std::size_t deferred_capacity = 256;
  // Master switch: a disabled recorder drops events/timings at the emit
  // site (subsystems check enabled() once per emit).
  bool enabled = true;
};

class Recorder {
 public:
  explicit Recorder(RecorderConfig config = {});
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // Journals the event and bumps the per-type "events.<type>" counter.
  // String-bearing alternatives land here; staged events are flushed first
  // so journal order always matches emit order.
  void record(Event event) {
    if (!enabled_) return;
    type_counters_[event.index()]->inc();
    flush_deferred();
    journal_.record(std::move(event));
  }

  // Fast path for trivially-copyable alternatives: bump the counter, stage
  // the raw payload, return. Encoding into the journal happens at the next
  // flush point.
  template <class T,
            std::enable_if_t<detail::IsPodAlternative<T, Event>::value, int> = 0>
  void record(const T& event) {
    if (!enabled_) return;
    constexpr std::size_t kIndex = detail::AltIndex<T, Event>::value;
    type_counters_[kIndex]->inc();
    if (deferred_.empty()) {  // staging disabled: journal eagerly
      journal_.record(Event(std::in_place_type<T>, event));
      return;
    }
    if (deferred_count_ == deferred_.size()) flush_deferred();
    DeferredSlot& slot = deferred_[deferred_count_++];
    slot.type = static_cast<std::uint8_t>(kIndex);
    std::memcpy(slot.payload, &event, sizeof(T));
  }

  // Encodes staged events into the journal, oldest first. Safe to call at
  // any time; record() and journal() call it at every point where order
  // could become observable. Non-empty flushes feed the
  // "obs.journal_flush_us" stall timer.
  void flush_deferred();

  // Staged events not yet encoded (diagnostics/tests).
  std::size_t deferred_pending() const { return deferred_count_; }

  // ---- Causal spans ----
  //
  // Span ids come from a per-recorder monotonic counter: each run owns one
  // recorder and emits from one thread, so same-seed runs hand out the same
  // ids in the same order and journals stay byte-identical. A scope stack
  // carries the "current cause" across call boundaries (controller round →
  // orchestrator move → network reallocation) without threading ids through
  // every signature.
  SpanId new_span() { return enabled_ ? ++last_span_ : kNoSpan; }
  SpanId current_span() const {
    return span_stack_.empty() ? kNoSpan : span_stack_.back();
  }
  void push_span(SpanId span) { span_stack_.push_back(span); }
  void pop_span() {
    if (!span_stack_.empty()) span_stack_.pop_back();
  }

  EventJournal& journal() {
    flush_deferred();
    return journal_;
  }
  const EventJournal& journal() const {
    const_cast<Recorder*>(this)->flush_deferred();
    return journal_;
  }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

 private:
  struct DeferredSlot {
    std::uint8_t type = 0;
    alignas(alignof(std::max_align_t)) std::byte
        payload[detail::MaxPodSize<Event>::value];
  };

  template <std::size_t I>
  bool try_emit(const DeferredSlot& slot) {
    using T = std::variant_alternative_t<I, Event>;
    if constexpr (std::is_trivially_copyable_v<T>) {
      if (slot.type != I) return false;
      T event;
      std::memcpy(&event, slot.payload, sizeof(T));
      journal_.record(Event(std::in_place_type<T>, event));
      return true;
    } else {
      return false;  // string-bearing alternatives are never staged
    }
  }

  template <std::size_t... Is>
  void emit_slot(const DeferredSlot& slot, std::index_sequence<Is...>) {
    (try_emit<Is>(slot) || ...);
  }

  bool enabled_ = true;
  EventJournal journal_;
  MetricsRegistry metrics_;
  // Per-type event counters, indexed by variant alternative — cached so
  // record() on hot paths never hashes a metric name.
  std::vector<Counter*> type_counters_;
  // Deferred-encode ring: preallocated, drained FIFO at flush points.
  std::vector<DeferredSlot> deferred_;
  std::size_t deferred_count_ = 0;
  // Causal-span state: monotonic id source + active-scope stack.
  SpanId last_span_ = 0;
  std::vector<SpanId> span_stack_;
  // Journal flush stalls, cached at construction (wall clock; not journaled).
  LogHistogram* m_flush_us_ = nullptr;
};

// RAII span scope: pushes `span` as the current cause for the duration.
// Null-recorder and no-span tolerant, so emit sites can use it
// unconditionally.
class SpanScope {
 public:
  SpanScope(Recorder* recorder, SpanId span)
      : recorder_(span != kNoSpan ? recorder : nullptr) {
    if (recorder_ != nullptr) recorder_->push_span(span);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  ~SpanScope() {
    if (recorder_ != nullptr) recorder_->pop_span();
  }

 private:
  Recorder* recorder_;
};

// Recorder for profiling scopes inside pure kernels. Resolution is one TLS
// load + null check: the calling thread's slot wins, and only a thread with
// no slot installed falls back to the process-wide default.
//
// Ownership rule: the recorder outlives its installation (install nullptr
// before destroying it). set_global_recorder() binds the *calling thread*
// only — a sweep worker installs its run's recorder for the duration of the
// run (use ScopedGlobalRecorder), so concurrent runs never share a slot.
// set_default_global_recorder() sets the process-wide fallback for
// single-threaded harnesses; install it before spawning worker threads.
Recorder* global_recorder();
// Returns the calling thread's previous slot value (for restore-on-exit).
Recorder* set_global_recorder(Recorder* recorder);
void set_default_global_recorder(Recorder* recorder);

// RAII install/restore of the calling thread's global-recorder slot.
class ScopedGlobalRecorder {
 public:
  explicit ScopedGlobalRecorder(Recorder* recorder)
      : prev_(set_global_recorder(recorder)) {}
  ScopedGlobalRecorder(const ScopedGlobalRecorder&) = delete;
  ScopedGlobalRecorder& operator=(const ScopedGlobalRecorder&) = delete;
  ~ScopedGlobalRecorder() { set_global_recorder(prev_); }

 private:
  Recorder* prev_;
};

// RAII wall-clock timer feeding a registry log-bucketed timer histogram
// ("<name>", unit microseconds). The clock is only read when a live,
// enabled recorder is present at construction.
class ScopedTimer {
 public:
  ScopedTimer(Recorder* recorder, const char* name)
      : recorder_(recorder != nullptr && recorder->enabled() ? recorder : nullptr),
        name_(name) {
    if (recorder_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (recorder_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    recorder_->metrics().log_timer_us(name_).observe(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }

 private:
  Recorder* recorder_;
  const char* name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bass::obs

// Profiling scope against the global recorder, for pure kernels that take
// no Recorder. Compiles to nothing with -DBASS_OBS_NO_PROFILING (perf
// builds that refuse even the null-check branch).
#ifdef BASS_OBS_NO_PROFILING
#define BASS_OBS_SCOPE(name)
#else
#define BASS_OBS_SCOPE(name) \
  ::bass::obs::ScopedTimer bass_obs_scope_##__LINE__(::bass::obs::global_recorder(), name)
#endif
